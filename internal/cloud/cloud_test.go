package cloud

import (
	"strings"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/blobstore"
	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/dist"
)

// testConfig returns a deterministic, constant-latency profile that makes
// component contributions easy to assert on.
func testConfig() Config {
	return Config{
		Name:              "testcloud",
		PropagationRTT:    20 * time.Millisecond,
		FrontendDelay:     dist.Constant(2 * time.Millisecond),
		ResponseDelay:     dist.Constant(1 * time.Millisecond),
		InternalDelay:     dist.Constant(3 * time.Millisecond),
		RoutingDelay:      dist.Constant(1 * time.Millisecond),
		WarmOverhead:      dist.Constant(4 * time.Millisecond),
		SchedulerCapacity: 16,
		PlacementDelay:    dist.Constant(10 * time.Millisecond),
		Policy:            PolicyConfig{Kind: PolicyNoQueue},
		SandboxBoot:       dist.Constant(100 * time.Millisecond),
		WarmGenericPool:   true,
		PooledInit:        dist.Constant(50 * time.Millisecond),
		RuntimeInit: map[string]dist.Dist{
			RuntimeMethodKey(RuntimePython, DeployContainer): dist.Constant(80 * time.Millisecond),
			RuntimeMethodKey(RuntimeGo, DeployContainer):     dist.Constant(55 * time.Millisecond),
		},
		ContainerChunkReads: map[Runtime]int{RuntimePython: 10},
		ChunkReadLatency:    dist.Constant(5 * time.Millisecond),
		ImageStore: blobstore.Config{
			Name:            "images",
			GetLatency:      dist.Constant(40 * time.Millisecond),
			GetBandwidthBps: 800e6,
		},
		PayloadStore: blobstore.Config{
			Name:            "payloads",
			GetLatency:      dist.Constant(15 * time.Millisecond),
			PutLatency:      dist.Constant(25 * time.Millisecond),
			GetBandwidthBps: 80e6,
			PutBandwidthBps: 80e6,
		},
		InlineLimitBytes:   6 << 20,
		InlineBandwidthBps: 264e6,
		KeepAlive:          KeepAlivePolicy{Fixed: 10 * time.Minute},
		Workers:            8,
	}
}

func newTestCloud(t *testing.T, cfg Config) (*des.Engine, *Cloud) {
	t.Helper()
	eng := des.NewEngine()
	t.Cleanup(eng.Close)
	c, err := New(eng, cfg, dist.NewStreams(1))
	if err != nil {
		t.Fatal(err)
	}
	return eng, c
}

func deploy(t *testing.T, c *Cloud, spec FunctionSpec) {
	t.Helper()
	if spec.Runtime == "" {
		spec.Runtime = RuntimePython
	}
	if spec.Method == "" {
		spec.Method = DeployZIP
	}
	if err := c.Deploy(spec); err != nil {
		t.Fatal(err)
	}
}

// invokeAt runs a single invocation at the given virtual time and returns
// its latency and response.
type result struct {
	lat  time.Duration
	resp *Response
	err  error
}

func invokeAt(eng *des.Engine, c *Cloud, at time.Duration, req *Request) *result {
	r := &result{}
	eng.At(at, func() {
		eng.Spawn("client", func(p *des.Proc) {
			start := p.Now()
			r.resp, r.err = c.Invoke(p, req)
			r.lat = p.Now() - start
		})
	})
	return r
}

func TestDeployValidation(t *testing.T) {
	_, c := newTestCloud(t, testConfig())
	if err := c.Deploy(FunctionSpec{Runtime: RuntimePython, Method: DeployZIP}); err == nil {
		t.Error("expected error for empty name")
	}
	if err := c.Deploy(FunctionSpec{Name: "f", Runtime: "rust", Method: DeployZIP}); err == nil {
		t.Error("expected error for unknown runtime")
	}
	if err := c.Deploy(FunctionSpec{Name: "f", Runtime: RuntimeGo, Method: "tarball"}); err == nil {
		t.Error("expected error for unknown method")
	}
	if err := c.Deploy(FunctionSpec{Name: "f", Runtime: RuntimeGo, Method: DeployZIP,
		Chain: &ChainSpec{Next: "g", Transfer: "pigeon"}}); err == nil {
		t.Error("expected error for unknown transfer")
	}
	deploy(t, c, FunctionSpec{Name: "f"})
	if err := c.Deploy(FunctionSpec{Name: "f", Runtime: RuntimePython, Method: DeployZIP}); err == nil {
		t.Error("expected error for duplicate deploy")
	}
	if !c.HasFunction("f") || c.HasFunction("g") {
		t.Error("HasFunction wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	eng := des.NewEngine()
	defer eng.Close()
	bad := []Config{
		{},                                // no name
		{Name: "x"},                       // no scheduler capacity
		{Name: "x", SchedulerCapacity: 1}, // no workers
		func() Config { c := testConfig(); c.Policy.Kind = "weird"; return c }(),
		func() Config { c := testConfig(); c.Policy = PolicyConfig{Kind: PolicyBoundedQueue}; return c }(),
		func() Config {
			c := testConfig()
			c.Policy = PolicyConfig{Kind: PolicyRateLimited, MaxQueuePerInstance: 1}
			return c
		}(),
		func() Config { c := testConfig(); c.KeepAlive = KeepAlivePolicy{}; return c }(),
	}
	for i, cfg := range bad {
		if _, err := New(eng, cfg, dist.NewStreams(1)); err == nil {
			t.Errorf("config %d: expected validation error", i)
		}
	}
}

func TestColdThenWarmInvocation(t *testing.T) {
	eng, c := newTestCloud(t, testConfig())
	deploy(t, c, FunctionSpec{Name: "f"})

	cold := invokeAt(eng, c, 0, &Request{Fn: "f"})
	warm := invokeAt(eng, c, time.Minute, &Request{Fn: "f"})
	eng.Run(0)

	if cold.err != nil || warm.err != nil {
		t.Fatalf("errors: %v, %v", cold.err, warm.err)
	}
	if !cold.resp.Cold {
		t.Error("first invocation should be cold")
	}
	if warm.resp.Cold {
		t.Error("second invocation should be warm")
	}
	if cold.resp.InstanceID != warm.resp.InstanceID {
		t.Error("warm invocation should reuse the instance")
	}
	// Warm latency: prop(20) + frontend(2) + routing(1) + overhead(4) +
	// response(1) = 28ms.
	if warm.lat != 28*time.Millisecond {
		t.Errorf("warm latency = %v, want 28ms", warm.lat)
	}
	// Cold adds placement(10) + boot(100) + image fetch(40 + ~8MB/800Mbps
	// = ~80ms) + pooled init(50).
	if cold.lat < 250*time.Millisecond || cold.lat > 350*time.Millisecond {
		t.Errorf("cold latency = %v, want ~290ms", cold.lat)
	}
	if cold.resp.QueueWait == 0 {
		t.Error("cold invocation should report queue wait")
	}
	if warm.resp.QueueWait != 0 {
		t.Error("warm invocation should not report queue wait")
	}
}

func TestExecTimeAddsToLatency(t *testing.T) {
	eng, c := newTestCloud(t, testConfig())
	deploy(t, c, FunctionSpec{Name: "f"})
	invokeAt(eng, c, 0, &Request{Fn: "f"}) // warm it up
	base := invokeAt(eng, c, time.Minute, &Request{Fn: "f"})
	busy := invokeAt(eng, c, 2*time.Minute, &Request{Fn: "f", ExecTime: time.Second})
	eng.Run(0)
	if got := busy.lat - base.lat; got != time.Second {
		t.Fatalf("exec-time delta = %v, want 1s", got)
	}
}

func TestSpecExecTimeDefault(t *testing.T) {
	eng, c := newTestCloud(t, testConfig())
	deploy(t, c, FunctionSpec{Name: "f", ExecTime: 300 * time.Millisecond})
	invokeAt(eng, c, 0, &Request{Fn: "f"})
	warm := invokeAt(eng, c, time.Minute, &Request{Fn: "f"})
	eng.Run(0)
	if warm.lat != 28*time.Millisecond+300*time.Millisecond {
		t.Fatalf("latency = %v, want 328ms", warm.lat)
	}
}

func TestKeepAliveExpiry(t *testing.T) {
	cfg := testConfig()
	cfg.KeepAlive = KeepAlivePolicy{Fixed: 10 * time.Minute}
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "f"})

	invokeAt(eng, c, 0, &Request{Fn: "f"})
	before := invokeAt(eng, c, 9*time.Minute, &Request{Fn: "f"})
	after := invokeAt(eng, c, 25*time.Minute, &Request{Fn: "f"})
	eng.Run(0)

	if before.resp.Cold {
		t.Error("invocation before keep-alive expiry should be warm")
	}
	if !after.resp.Cold {
		t.Error("invocation after keep-alive expiry should be cold")
	}
	if c.Metrics().Expirations == 0 {
		t.Error("expected an instance expiration")
	}
}

func TestKeepAliveRefreshOnUse(t *testing.T) {
	cfg := testConfig()
	cfg.KeepAlive = KeepAlivePolicy{Fixed: 10 * time.Minute}
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "f"})
	// Invoke every 9 minutes for 5 rounds: instance should stay warm
	// because each use re-arms the keep-alive.
	var results []*result
	for i := 0; i < 5; i++ {
		results = append(results, invokeAt(eng, c, time.Duration(i)*9*time.Minute, &Request{Fn: "f"}))
	}
	eng.Run(0)
	for i, r := range results[1:] {
		if r.resp.Cold {
			t.Fatalf("invocation %d should be warm", i+1)
		}
	}
}

func TestStochasticKeepAlive(t *testing.T) {
	cfg := testConfig()
	cfg.KeepAlive = KeepAlivePolicy{Dist: dist.Exponential{Mean: 5 * time.Minute}}
	eng, c := newTestCloud(t, cfg)
	// Many functions invoked twice 15 minutes apart: most second
	// invocations should be cold (P(alive) = exp(-3) ~ 5%).
	var seconds []*result
	for i := 0; i < 40; i++ {
		name := "f" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		deploy(t, c, FunctionSpec{Name: name})
		invokeAt(eng, c, 0, &Request{Fn: name})
		seconds = append(seconds, invokeAt(eng, c, 15*time.Minute, &Request{Fn: name}))
	}
	eng.Run(0)
	coldCount := 0
	for _, r := range seconds {
		if r.resp.Cold {
			coldCount++
		}
	}
	if coldCount < 30 {
		t.Fatalf("only %d/40 second invocations cold; keep-alive too sticky", coldCount)
	}
}

func TestNoQueuePolicySpawnsPerRequest(t *testing.T) {
	eng, c := newTestCloud(t, testConfig())
	deploy(t, c, FunctionSpec{Name: "f"})
	const n = 20
	var results []*result
	for i := 0; i < n; i++ {
		results = append(results, invokeAt(eng, c, 0, &Request{Fn: "f", ExecTime: time.Second}))
	}
	eng.Run(0)
	instances := map[int]bool{}
	for _, r := range results {
		if r.err != nil {
			t.Fatal(r.err)
		}
		instances[r.resp.InstanceID] = true
	}
	if len(instances) != n {
		t.Fatalf("%d distinct instances for %d requests; no-queue must not share", len(instances), n)
	}
}

func TestBoundedQueuePolicySharesInstances(t *testing.T) {
	cfg := testConfig()
	cfg.Policy = PolicyConfig{Kind: PolicyBoundedQueue, MaxQueuePerInstance: 4}
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "f"})
	const n = 20
	var results []*result
	for i := 0; i < n; i++ {
		results = append(results, invokeAt(eng, c, 0, &Request{Fn: "f", ExecTime: time.Second}))
	}
	eng.Run(0)
	instances := map[int]int{}
	for _, r := range results {
		instances[r.resp.InstanceID]++
	}
	if len(instances) != n/4 {
		t.Fatalf("%d instances for %d requests with depth 4, want %d", len(instances), n, n/4)
	}
	for id, served := range instances {
		if served > 4 {
			t.Fatalf("instance %d served %d > depth 4 in one burst", id, served)
		}
	}
}

func TestRateLimitedPolicyThrottlesScaleOut(t *testing.T) {
	cfg := testConfig()
	cfg.Policy = PolicyConfig{
		Kind:                PolicyRateLimited,
		MaxQueuePerInstance: 100,
		InitialTokens:       2,
		MaxTokens:           2,
		TokensPerSec:        1,
		EvalInterval:        500 * time.Millisecond,
	}
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "f"})
	const n = 30
	var results []*result
	for i := 0; i < n; i++ {
		results = append(results, invokeAt(eng, c, 0, &Request{Fn: "f", ExecTime: time.Second}))
	}
	eng.Run(0)
	instances := map[int]int{}
	var maxLat time.Duration
	for _, r := range results {
		if r.err != nil {
			t.Fatal(r.err)
		}
		instances[r.resp.InstanceID]++
		if r.lat > maxLat {
			maxLat = r.lat
		}
	}
	if len(instances) >= n {
		t.Fatalf("rate-limited policy spawned %d instances for %d requests", len(instances), n)
	}
	shared := false
	for _, served := range instances {
		if served > 1 {
			shared = true
		}
	}
	if !shared {
		t.Fatal("expected requests to queue at shared instances")
	}
	if maxLat < 3*time.Second {
		t.Fatalf("max latency %v too low for deep queueing", maxLat)
	}
}

func TestCongestionDelaysBursts(t *testing.T) {
	cfg := testConfig()
	cfg.CongestionThreshold = 2
	cfg.CongestionUnit = time.Millisecond
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "f"})
	// Warm 100 instances first.
	for i := 0; i < 100; i++ {
		invokeAt(eng, c, 0, &Request{Fn: "f"})
	}
	single := invokeAt(eng, c, time.Minute, &Request{Fn: "f"})
	var burst []*result
	for i := 0; i < 100; i++ {
		burst = append(burst, invokeAt(eng, c, 2*time.Minute, &Request{Fn: "f"}))
	}
	eng.Run(0)
	var maxBurst time.Duration
	for _, r := range burst {
		if r.lat > maxBurst {
			maxBurst = r.lat
		}
	}
	if maxBurst <= single.lat+50*time.Millisecond {
		t.Fatalf("burst max %v should exceed single %v by >50ms of congestion", maxBurst, single.lat)
	}
}

func TestSlowPathHiccups(t *testing.T) {
	cfg := testConfig()
	cfg.CongestionThreshold = 0
	cfg.SlowPathProbPerInflight = 0.01
	cfg.SlowPathMaxProb = 0.5
	cfg.SlowPathDelay = dist.Constant(400 * time.Millisecond)
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "f"})
	for i := 0; i < 100; i++ {
		invokeAt(eng, c, 0, &Request{Fn: "f"})
	}
	var burst []*result
	for i := 0; i < 100; i++ {
		burst = append(burst, invokeAt(eng, c, time.Minute, &Request{Fn: "f"}))
	}
	eng.Run(0)
	slow := 0
	for _, r := range burst {
		if r.lat > 400*time.Millisecond {
			slow++
		}
	}
	if slow == 0 {
		t.Fatal("expected some slow-path hiccups in a 100-burst")
	}
	if slow > 80 {
		t.Fatalf("%d/100 slow paths; cap not applied", slow)
	}
	if c.Metrics().SlowPaths == 0 {
		t.Fatal("slow-path metric not incremented")
	}
}

func TestImageSizeSlowsColdStart(t *testing.T) {
	eng, c := newTestCloud(t, testConfig())
	deploy(t, c, FunctionSpec{Name: "small", Runtime: RuntimeGo, ExtraImageBytes: 10 << 20})
	deploy(t, c, FunctionSpec{Name: "large", Runtime: RuntimeGo, ExtraImageBytes: 100 << 20})
	small := invokeAt(eng, c, 0, &Request{Fn: "small"})
	large := invokeAt(eng, c, 0, &Request{Fn: "large"})
	eng.Run(0)
	// 90MB extra at 800Mb/s is 900ms more transfer.
	delta := large.lat - small.lat
	if delta < 800*time.Millisecond || delta > time.Second {
		t.Fatalf("100MB vs 10MB cold delta = %v, want ~900ms", delta)
	}
}

func TestContainerChunkReadsPenalizePython(t *testing.T) {
	eng, c := newTestCloud(t, testConfig())
	deploy(t, c, FunctionSpec{Name: "py", Runtime: RuntimePython, Method: DeployContainer})
	deploy(t, c, FunctionSpec{Name: "go", Runtime: RuntimeGo, Method: DeployContainer})
	py := invokeAt(eng, c, 0, &Request{Fn: "py"})
	goRes := invokeAt(eng, c, 0, &Request{Fn: "go"})
	eng.Run(0)
	// Python container pays 10 chunk reads * 5ms plus the init delta.
	if py.lat <= goRes.lat+50*time.Millisecond {
		t.Fatalf("python container %v should exceed go container %v by chunk-read cost", py.lat, goRes.lat)
	}
}

func TestWarmGenericPoolEqualizesZipRuntimes(t *testing.T) {
	eng, c := newTestCloud(t, testConfig())
	deploy(t, c, FunctionSpec{Name: "py", Runtime: RuntimePython, Method: DeployZIP, BaseImageBytes: 4 << 20})
	deploy(t, c, FunctionSpec{Name: "go", Runtime: RuntimeGo, Method: DeployZIP, BaseImageBytes: 4 << 20})
	py := invokeAt(eng, c, 0, &Request{Fn: "py"})
	goRes := invokeAt(eng, c, 0, &Request{Fn: "go"})
	eng.Run(0)
	if py.lat != goRes.lat {
		t.Fatalf("ZIP cold starts should match under warm generic pool: py=%v go=%v", py.lat, goRes.lat)
	}
}

func TestChainInlineTransfer(t *testing.T) {
	eng, c := newTestCloud(t, testConfig())
	deploy(t, c, FunctionSpec{Name: "consumer", Runtime: RuntimeGo})
	deploy(t, c, FunctionSpec{Name: "producer", Runtime: RuntimeGo,
		Chain: &ChainSpec{Next: "consumer", Transfer: TransferInline, PayloadBytes: 1 << 20}})
	// Warm both.
	invokeAt(eng, c, 0, &Request{Fn: "producer"})
	r := invokeAt(eng, c, time.Minute, &Request{Fn: "producer"})
	eng.Run(0)
	if r.err != nil {
		t.Fatal(r.err)
	}
	transfer, ok := r.resp.TransferTime("producer", "consumer")
	if !ok {
		t.Fatalf("missing instrumentation timestamps: %v", r.resp.Timestamps)
	}
	// Wire time for 1MiB at 264Mb/s is ~31.8ms; plus internal ingress 3ms,
	// routing 1ms, overhead 4ms.
	if transfer < 35*time.Millisecond || transfer > 55*time.Millisecond {
		t.Fatalf("inline transfer = %v, want ~40ms", transfer)
	}
}

func TestChainInlineLimitRejected(t *testing.T) {
	eng, c := newTestCloud(t, testConfig())
	deploy(t, c, FunctionSpec{Name: "consumer", Runtime: RuntimeGo})
	deploy(t, c, FunctionSpec{Name: "producer", Runtime: RuntimeGo,
		Chain: &ChainSpec{Next: "consumer", Transfer: TransferInline, PayloadBytes: 10 << 20}})
	r := invokeAt(eng, c, 0, &Request{Fn: "producer"})
	eng.Run(0)
	if r.err == nil || !strings.Contains(r.err.Error(), "inline payload") {
		t.Fatalf("expected inline-limit error, got %v", r.err)
	}
}

func TestChainStorageTransfer(t *testing.T) {
	eng, c := newTestCloud(t, testConfig())
	deploy(t, c, FunctionSpec{Name: "consumer", Runtime: RuntimeGo})
	deploy(t, c, FunctionSpec{Name: "producer", Runtime: RuntimeGo,
		Chain: &ChainSpec{Next: "consumer", Transfer: TransferStorage, PayloadBytes: 1e6}})
	invokeAt(eng, c, 0, &Request{Fn: "producer"})
	r := invokeAt(eng, c, time.Minute, &Request{Fn: "producer"})
	eng.Run(0)
	if r.err != nil {
		t.Fatal(r.err)
	}
	transfer, ok := r.resp.TransferTime("producer", "consumer")
	if !ok {
		t.Fatal("missing instrumentation timestamps")
	}
	// PUT 25ms + 100ms xfer, GET 15ms + 100ms xfer, plus internal hop ~8ms.
	if transfer < 200*time.Millisecond || transfer > 300*time.Millisecond {
		t.Fatalf("storage transfer = %v, want ~250ms", transfer)
	}
	m := c.PayloadStore().Metrics()
	if m.Puts != 2 || m.Gets != 2 {
		t.Fatalf("payload store ops = %+v, want 2 puts / 2 gets", m)
	}
}

func TestChainPayloadOverride(t *testing.T) {
	eng, c := newTestCloud(t, testConfig())
	deploy(t, c, FunctionSpec{Name: "consumer", Runtime: RuntimeGo})
	deploy(t, c, FunctionSpec{Name: "producer", Runtime: RuntimeGo,
		Chain: &ChainSpec{Next: "consumer", Transfer: TransferInline, PayloadBytes: 1 << 10}})
	invokeAt(eng, c, 0, &Request{Fn: "producer"})
	smallR := invokeAt(eng, c, time.Minute, &Request{Fn: "producer"})
	bigR := invokeAt(eng, c, 2*time.Minute, &Request{Fn: "producer", ChainPayloadBytes: 4 << 20})
	eng.Run(0)
	small, _ := smallR.resp.TransferTime("producer", "consumer")
	big, _ := bigR.resp.TransferTime("producer", "consumer")
	if big <= small+50*time.Millisecond {
		t.Fatalf("4MB transfer %v should well exceed 1KB transfer %v", big, small)
	}
}

func TestThreeFunctionChain(t *testing.T) {
	eng, c := newTestCloud(t, testConfig())
	deploy(t, c, FunctionSpec{Name: "c3", Runtime: RuntimeGo})
	deploy(t, c, FunctionSpec{Name: "c2", Runtime: RuntimeGo,
		Chain: &ChainSpec{Next: "c3", Transfer: TransferInline, PayloadBytes: 1 << 10}})
	deploy(t, c, FunctionSpec{Name: "c1", Runtime: RuntimeGo,
		Chain: &ChainSpec{Next: "c2", Transfer: TransferInline, PayloadBytes: 1 << 10}})
	r := invokeAt(eng, c, 0, &Request{Fn: "c1"})
	eng.Run(0)
	if r.err != nil {
		t.Fatal(r.err)
	}
	for _, key := range []string{"c1.recv", "c1.send", "c2.recv", "c2.send", "c3.recv"} {
		if _, ok := r.resp.Timestamps[key]; !ok {
			t.Fatalf("missing timestamp %s in %v", key, r.resp.Timestamps)
		}
	}
	if c.Metrics().InternalInvocations != 2 {
		t.Fatalf("internal invocations = %d, want 2", c.Metrics().InternalInvocations)
	}
}

func TestChainToMissingFunction(t *testing.T) {
	eng, c := newTestCloud(t, testConfig())
	deploy(t, c, FunctionSpec{Name: "producer", Runtime: RuntimeGo,
		Chain: &ChainSpec{Next: "ghost", Transfer: TransferInline, PayloadBytes: 1}})
	r := invokeAt(eng, c, 0, &Request{Fn: "producer"})
	eng.Run(0)
	if r.err == nil || !strings.Contains(r.err.Error(), "ghost") {
		t.Fatalf("expected chain error naming ghost, got %v", r.err)
	}
}

func TestInvokeUnknownFunction(t *testing.T) {
	eng, c := newTestCloud(t, testConfig())
	r := invokeAt(eng, c, 0, &Request{Fn: "nope"})
	eng.Run(0)
	if r.err == nil {
		t.Fatal("expected error for unknown function")
	}
}

func TestRemoveFunction(t *testing.T) {
	eng, c := newTestCloud(t, testConfig())
	deploy(t, c, FunctionSpec{Name: "f"})
	invokeAt(eng, c, 0, &Request{Fn: "f"})
	eng.Run(time.Minute) // stop before keep-alive expiry
	if got := c.LiveInstances("f"); got != 1 {
		t.Fatalf("live instances = %d", got)
	}
	if err := c.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if c.HasFunction("f") {
		t.Fatal("function still deployed after Remove")
	}
	if err := c.Remove("f"); err == nil {
		t.Fatal("expected error removing twice")
	}
	r := invokeAt(eng, c, time.Minute, &Request{Fn: "f"})
	eng.Run(0)
	if r.err == nil {
		t.Fatal("expected error invoking removed function")
	}
}

func TestMetricsAndWorkers(t *testing.T) {
	eng, c := newTestCloud(t, testConfig())
	deploy(t, c, FunctionSpec{Name: "f"})
	for i := 0; i < 10; i++ {
		invokeAt(eng, c, 0, &Request{Fn: "f", ExecTime: time.Second})
	}
	eng.Run(time.Minute) // stop before keep-alive expiry
	m := c.Metrics()
	if m.Invocations != 10 || m.ColdServed != 10 || m.Spawns != 10 {
		t.Fatalf("metrics = %+v", m)
	}
	total := 0
	for _, w := range c.Workers() {
		total += w.Instances
	}
	if total != 10 {
		t.Fatalf("worker instance total = %d, want 10", total)
	}
	if c.IdleInstances("f") != 10 {
		t.Fatalf("idle = %d, want 10", c.IdleInstances("f"))
	}
}

func TestInternalSkipsPropagation(t *testing.T) {
	eng, c := newTestCloud(t, testConfig())
	deploy(t, c, FunctionSpec{Name: "f", Runtime: RuntimeGo})
	invokeAt(eng, c, 0, &Request{Fn: "f"})
	ext := invokeAt(eng, c, time.Minute, &Request{Fn: "f"})
	intl := invokeAt(eng, c, 2*time.Minute, &Request{Fn: "f", Internal: true})
	eng.Run(0)
	// Internal: internal(3) + routing(1) + overhead(4) = 8ms.
	if intl.lat != 8*time.Millisecond {
		t.Fatalf("internal latency = %v, want 8ms", intl.lat)
	}
	if ext.lat <= intl.lat {
		t.Fatal("external invocation must include propagation")
	}
}

func TestImageStoreCacheSpeedsBurstColdStarts(t *testing.T) {
	cfg := testConfig()
	cfg.ImageStore.Cache = blobstore.CacheConfig{
		Enabled:          true,
		ActivationCount:  1,
		ActivationWindow: time.Minute,
		TTL:              2 * time.Minute,
		HitLatency:       dist.Constant(2 * time.Millisecond),
		HitBandwidthBps:  8e9,
	}
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "f"})
	var burst []*result
	for i := 0; i < 50; i++ {
		burst = append(burst, invokeAt(eng, c, 0, &Request{Fn: "f", ExecTime: time.Second}))
	}
	eng.Run(0)
	hits := c.ImageStore().Metrics().CacheHits
	if hits < 45 {
		t.Fatalf("image cache hits = %d, want ~49", hits)
	}
}

func TestPlacementStrategies(t *testing.T) {
	// Round-robin spreads instances evenly across workers.
	rrCfg := testConfig()
	rrCfg.Workers = 4
	eng, c := newTestCloud(t, rrCfg)
	deploy(t, c, FunctionSpec{Name: "f"})
	for i := 0; i < 8; i++ {
		invokeAt(eng, c, 0, &Request{Fn: "f", ExecTime: time.Second})
	}
	eng.Run(time.Minute)
	for _, w := range c.Workers() {
		if w.Instances != 2 {
			t.Fatalf("round-robin worker %d has %d instances, want 2", w.ID, w.Instances)
		}
	}

	// Least-loaded rebalances after skewed expiry.
	llCfg := testConfig()
	llCfg.Workers = 2
	llCfg.Placement = PlacementLeastLoaded
	eng2, c2 := newTestCloud(t, llCfg)
	deploy(t, c2, FunctionSpec{Name: "f"})
	for i := 0; i < 6; i++ {
		invokeAt(eng2, c2, 0, &Request{Fn: "f", ExecTime: time.Second})
	}
	eng2.Run(time.Minute)
	if c2.Workers()[0].Instances != 3 || c2.Workers()[1].Instances != 3 {
		t.Fatalf("least-loaded split = %d/%d, want 3/3",
			c2.Workers()[0].Instances, c2.Workers()[1].Instances)
	}
}

func TestPlacementValidation(t *testing.T) {
	cfg := testConfig()
	cfg.Placement = "teleport"
	eng := des.NewEngine()
	defer eng.Close()
	if _, err := New(eng, cfg, dist.NewStreams(1)); err == nil {
		t.Fatal("expected error for unknown placement strategy")
	}
}

func TestWorkerCapacitySaturation(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 2
	cfg.WorkerCapacity = 3 // cluster holds at most 6 instances
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "f"})
	var rs []*result
	for i := 0; i < 12; i++ {
		rs = append(rs, invokeAt(eng, c, 0, &Request{Fn: "f", ExecTime: time.Second}))
	}
	eng.Run(time.Minute)
	// All requests eventually succeed, but live instances never exceeded
	// the cluster bound: the last batch waited for slots.
	for i, r := range rs {
		if r.err != nil {
			t.Fatalf("request %d: %v", i, r.err)
		}
	}
	total := 0
	for _, w := range c.Workers() {
		total += w.Instances
	}
	if total > 6 {
		t.Fatalf("live instances %d exceed cluster capacity 6", total)
	}
	// Saturation shows up as queue waits far beyond one cold start for
	// the overflow requests (they wait ~1s for a slot).
	var maxWait time.Duration
	for _, r := range rs {
		if r.resp.QueueWait > maxWait {
			maxWait = r.resp.QueueWait
		}
	}
	if maxWait < 1200*time.Millisecond {
		t.Fatalf("max queue wait %v; expected slot waiting beyond one cold start", maxWait)
	}
}

func TestWorkerCapacityValidation(t *testing.T) {
	cfg := testConfig()
	cfg.WorkerCapacity = -1
	eng := des.NewEngine()
	defer eng.Close()
	if _, err := New(eng, cfg, dist.NewStreams(1)); err == nil {
		t.Fatal("expected error for negative capacity")
	}
}
