package cli

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"github.com/stellar-repro/stellar/internal/core"
)

// repoConfigsDir locates the repository's configs/ directory relative to
// this source file, so the shipped example configuration files stay valid.
func repoConfigsDir(t *testing.T) string {
	t.Helper()
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate source file")
	}
	dir := filepath.Join(filepath.Dir(thisFile), "..", "..", "configs")
	if _, err := os.Stat(dir); err != nil {
		t.Skipf("configs directory not present: %v", err)
	}
	return dir
}

func TestShippedStaticConfigValid(t *testing.T) {
	dir := repoConfigsDir(t)
	sc, err := core.LoadStaticConfig(filepath.Join(dir, "static.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestShippedRuntimeConfigValid(t *testing.T) {
	dir := repoConfigsDir(t)
	rc, err := core.LoadRuntimeConfig(filepath.Join(dir, "runtime.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestShippedSuiteConfigValidAndRunnable(t *testing.T) {
	dir := repoConfigsDir(t)
	sc, err := core.LoadSuiteConfig(filepath.Join(dir, "suite.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sc.Experiments) < 3 {
		t.Fatalf("expected a multi-experiment suite, got %d", len(sc.Experiments))
	}
	// Shrink the sample counts and actually run the suite end-to-end.
	for i := range sc.Experiments {
		sc.Experiments[i].Runtime.Samples = 25
		if sc.Experiments[i].Runtime.WarmupDiscard > 5 {
			sc.Experiments[i].Runtime.WarmupDiscard = 5
		}
		if sc.Experiments[i].Runtime.BurstSize > 10 {
			sc.Experiments[i].Runtime.BurstSize = 10
		}
		for j := range sc.Experiments[i].Static.Functions {
			if sc.Experiments[i].Static.Functions[j].Replicas > 10 {
				sc.Experiments[i].Static.Functions[j].Replicas = 10
			}
		}
	}
	data, err := coreMarshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	small := writeTestFile(t, "small-suite.json", data)
	code, out, errOut := run(t, "suite", "-config", small)
	if code != 0 {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
	if !strings.Contains(out, "== suite summary") {
		t.Fatal("suite did not complete")
	}
}

func coreMarshal(sc *core.SuiteConfig) (string, error) {
	// SuiteConfig has no custom marshaling needs; reuse encoding/json via
	// the endpoints helper pattern.
	return marshalJSON(sc)
}

func marshalJSON(v interface{}) (string, error) {
	data, err := json.Marshal(v)
	return string(data), err
}

func TestShippedProviderProfileRuns(t *testing.T) {
	dir := repoConfigsDir(t)
	path := filepath.Join(dir, "provider-edge.json")
	code, out, errOut := run(t, "bench",
		"-provider-file", path, "-samples", "40", "-warmup", "1")
	if code != 0 {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
	if !strings.Contains(out, "samples=40") {
		t.Fatalf("bench against shipped profile failed:\n%s", out)
	}
}
