package experiments

import (
	"math"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/azuretrace"
)

// testOpts runs experiments at reduced-but-meaningful scale.
var testOpts = Options{Seed: 3, Samples: 900, Replicas: 50}

// med returns a series' median by label.
func findSeries(t *testing.T, fig *Figure, label string) Series {
	t.Helper()
	for _, s := range fig.Series {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("series %q not in %s (have %v)", label, fig.ID, labels(fig))
	return Series{}
}

func labels(fig *Figure) []string {
	out := make([]string, 0, len(fig.Series))
	for _, s := range fig.Series {
		out = append(out, s.Label)
	}
	return out
}

// withinFactor asserts got is within [want/f, want*f].
func withinFactor(t *testing.T, what string, got, want time.Duration, f float64) {
	t.Helper()
	lo := time.Duration(float64(want) / f)
	hi := time.Duration(float64(want) * f)
	if got < lo || got > hi {
		t.Errorf("%s = %v, want within %.1fx of %v", what, got, f, want)
	}
}

func TestFig3WarmShape(t *testing.T) {
	fig, err := Fig3Warm(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	aws := findSeries(t, fig, "aws").Summary()
	google := findSeries(t, fig, "google").Summary()
	azure := findSeries(t, fig, "azure").Summary()

	// Obs 1: warm invocations impose low delays and variability, with the
	// ordering google < aws < azure on medians.
	if google.Median >= aws.Median || aws.Median >= azure.Median {
		t.Errorf("warm median ordering violated: google %v < aws %v < azure %v",
			google.Median, aws.Median, azure.Median)
	}
	for _, s := range fig.Series {
		sum := s.Summary()
		if sum.TMR >= 3 {
			t.Errorf("%s warm TMR %.2f too high (paper <2 after propagation subtraction)", s.Label, sum.TMR)
		}
		withinFactor(t, s.Label+" warm median", sum.Median, s.Paper.Median, 1.25)
		withinFactor(t, s.Label+" warm p99", sum.P99, s.Paper.P99, 1.4)
	}
}

func TestFig3ColdShape(t *testing.T) {
	warm, err := Fig3Warm(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Fig3Cold(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	aws := findSeries(t, cold, "aws").Summary()
	google := findSeries(t, cold, "google").Summary()
	azure := findSeries(t, cold, "azure").Summary()
	// §VI-B1 ordering: AWS < Google < Azure for both median and tail.
	if !(aws.Median < google.Median && google.Median < azure.Median) {
		t.Errorf("cold median ordering violated: %v %v %v", aws.Median, google.Median, azure.Median)
	}
	if !(aws.P99 < google.P99 && google.P99 < azure.P99) {
		t.Errorf("cold tail ordering violated: %v %v %v", aws.P99, google.P99, azure.P99)
	}
	// Cold medians 8-35x the warm medians (paper: 10-28x).
	for _, prov := range AllProviders {
		w := findSeries(t, warm, prov).Summary().Median
		c := findSeries(t, cold, prov).Summary().Median
		ratio := float64(c) / float64(w)
		if ratio < 6 || ratio > 40 {
			t.Errorf("%s cold/warm median ratio %.1f outside 6-40", prov, ratio)
		}
	}
	// Every long-IAT invocation must actually be cold.
	for _, s := range cold.Series {
		if s.Colds != s.Latencies.Len() {
			t.Errorf("%s: %d colds of %d samples under long IAT", s.Label, s.Colds, s.Latencies.Len())
		}
		withinFactor(t, s.Label+" cold median", s.Summary().Median, s.Paper.Median, 1.3)
	}
}

func TestFig4Shape(t *testing.T) {
	fig, err := Fig4ImageSize(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	aws10 := findSeries(t, fig, "aws +10MB").Summary()
	aws100 := findSeries(t, fig, "aws +100MB").Summary()
	g10 := findSeries(t, fig, "google +10MB").Summary()
	g100 := findSeries(t, fig, "google +100MB").Summary()
	az10 := findSeries(t, fig, "azure +10MB").Summary()
	az100 := findSeries(t, fig, "azure +100MB").Summary()

	// AWS: considerable sensitivity (paper: 3.5x median going 10->100MB).
	if r := float64(aws100.Median) / float64(aws10.Median); r < 2.2 {
		t.Errorf("aws 100/10MB median ratio %.2f, want >= 2.2", r)
	}
	// Google: insensitive to image size (near-identical CDFs).
	if r := float64(g100.Median) / float64(g10.Median); r > 1.35 {
		t.Errorf("google 100/10MB median ratio %.2f, want ~1", r)
	}
	// Azure: sensitive (paper: 2.4x median) and slowest overall.
	if r := float64(az100.Median) / float64(az10.Median); r < 1.8 {
		t.Errorf("azure 100/10MB median ratio %.2f, want >= 1.8", r)
	}
	if az100.Median <= aws100.Median {
		t.Errorf("azure 100MB median %v should exceed aws %v", az100.Median, aws100.Median)
	}
	// Obs 2: cold-start variability stays moderate (TMR < ~3.6).
	for _, s := range fig.Series {
		if tmr := s.Summary().TMR; tmr > 4.2 {
			t.Errorf("%s TMR %.1f exceeds the paper's moderate range", s.Label, tmr)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	fig, err := Fig5RuntimeDeploy(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	goZip := findSeries(t, fig, "go1.x zip").Summary()
	pyZip := findSeries(t, fig, "python3 zip").Summary()
	goCtr := findSeries(t, fig, "go1.x container").Summary()
	pyCtr := findSeries(t, fig, "python3 container").Summary()

	// Obs 3: runtime choice barely matters for ZIP cold starts.
	if diff := math.Abs(float64(pyZip.Median - goZip.Median)); diff > float64(40*time.Millisecond) {
		t.Errorf("zip runtimes differ by %v, want <40ms", time.Duration(diff))
	}
	// Go container stays close to Go ZIP (static binary, same storage).
	if r := float64(goCtr.Median) / float64(goZip.Median); r > 1.35 {
		t.Errorf("go container/zip median ratio %.2f, want ~1", r)
	}
	// Python container: much slower and far more variable.
	if r := float64(pyCtr.Median) / float64(pyZip.Median); r < 1.3 {
		t.Errorf("python container/zip median ratio %.2f, want >= 1.3", r)
	}
	if pyCtr.TMR < goCtr.TMR || pyCtr.TMR < 2.2 {
		t.Errorf("python container TMR %.1f should be the highest (go container %.1f)", pyCtr.TMR, goCtr.TMR)
	}
	if pyCtr.P99 < 2*pyZip.P99 {
		t.Errorf("python container tail %v should be >2x zip tail %v", pyCtr.P99, pyZip.P99)
	}
}

func TestFig6Shape(t *testing.T) {
	fig, err := Fig6Inline(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Medians grow monotonically with payload per provider.
	for _, prov := range TransferProviders {
		var prev time.Duration
		for _, payload := range Fig6Payloads {
			sum := findSeries(t, fig, prov+" "+sizeLabel(payload)).Summary()
			if sum.Median < prev {
				t.Errorf("%s inline median not monotone at %s", prov, sizeLabel(payload))
			}
			prev = sum.Median
		}
	}
	aws1k := findSeries(t, fig, "aws 1KB").Summary()
	g1k := findSeries(t, fig, "google 1KB").Summary()
	aws4m := findSeries(t, fig, "aws 4MB").Summary()
	g4m := findSeries(t, fig, "google 4MB").Summary()
	// Google faster for small payloads, slower for large (crossover from
	// its lower base latency but lower inline bandwidth).
	if g1k.Median >= aws1k.Median {
		t.Errorf("google 1KB %v should beat aws %v", g1k.Median, aws1k.Median)
	}
	if g4m.Median <= aws4m.Median {
		t.Errorf("aws 4MB %v should beat google %v", aws4m.Median, g4m.Median)
	}
	// Obs 4: inline transfers are predictable at 1MB (TMR ~1.4-1.7).
	for _, prov := range TransferProviders {
		if tmr := findSeries(t, fig, prov+" 1MB").Summary().TMR; tmr > 2.5 {
			t.Errorf("%s inline 1MB TMR %.1f, want < 2.5", prov, tmr)
		}
	}
	// Effective bandwidths near the paper's 264 / 152 Mb/s.
	awsBW := EffectiveBandwidthMbps(4<<20, aws4m.Median)
	gBW := EffectiveBandwidthMbps(4<<20, g4m.Median)
	if awsBW < 180 || awsBW > 350 {
		t.Errorf("aws inline effective bandwidth %.0f Mb/s, want ~264", awsBW)
	}
	if gBW < 100 || gBW > 210 {
		t.Errorf("google inline effective bandwidth %.0f Mb/s, want ~152", gBW)
	}
}

func TestFig7Shape(t *testing.T) {
	fig, err := Fig7Storage(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	aws1m := findSeries(t, fig, "aws 1MB").Summary()
	g1m := findSeries(t, fig, "google 1MB").Summary()
	// AWS delivers the lowest storage-transfer median (1.4x faster at 1MB).
	if aws1m.Median >= g1m.Median {
		t.Errorf("aws 1MB storage median %v should beat google %v", aws1m.Median, g1m.Median)
	}
	// Obs 4: storage transfers blow up the tail: TMR ~10.6 (AWS) and
	// ~37.3 (Google) at 1MB.
	if aws1m.TMR < 4 {
		t.Errorf("aws storage 1MB TMR %.1f, want >> 1 (paper 10.6)", aws1m.TMR)
	}
	if g1m.TMR < 12 {
		t.Errorf("google storage 1MB TMR %.1f, want >> 10 (paper 37.3)", g1m.TMR)
	}
	if g1m.TMR <= aws1m.TMR {
		t.Errorf("google storage TMR %.1f should exceed aws %.1f", g1m.TMR, aws1m.TMR)
	}
	// Effective bandwidth grows with payload size and stays well below a
	// 10Gb NIC (paper: up to 960 / 408 Mb/s at >=100MB).
	for _, prov := range TransferProviders {
		small := findSeries(t, fig, prov+" 1MB").Summary().Median
		big := findSeries(t, fig, prov+" 100MB").Summary().Median
		bwSmall := EffectiveBandwidthMbps(1<<20, small)
		bwBig := EffectiveBandwidthMbps(100<<20, big)
		if bwBig <= bwSmall*2 {
			t.Errorf("%s storage bandwidth should grow with size: %.0f -> %.0f Mb/s", prov, bwSmall, bwBig)
		}
		if bwBig > 2000 {
			t.Errorf("%s storage bandwidth %.0f Mb/s implausibly above the paper's <1Gb/s", prov, bwBig)
		}
	}
}

func TestFig8ShortIATShape(t *testing.T) {
	fig, err := Fig8Bursts(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Short IAT: larger bursts raise medians for every provider.
	for _, prov := range AllProviders {
		b1 := findSeries(t, fig, prov+" short-IAT burst=1").Summary()
		b100 := findSeries(t, fig, prov+" short-IAT burst=100").Summary()
		b500 := findSeries(t, fig, prov+" short-IAT burst=500").Summary()
		if !(b1.Median < b100.Median && b100.Median <= b500.Median) {
			t.Errorf("%s short-IAT medians not increasing: %v %v %v", prov, b1.Median, b100.Median, b500.Median)
		}
		// Obs 5 magnitudes: AWS/Google moderate, Azure extreme.
		ratio := float64(b500.Median) / float64(b1.Median)
		switch prov {
		case "azure":
			if ratio < 10 {
				t.Errorf("azure short-IAT burst-500 blowup %.1fx, want >= 10x (paper 33x)", ratio)
			}
		default:
			if ratio > 8 {
				t.Errorf("%s short-IAT burst-500 blowup %.1fx, want moderate (paper ~3x)", prov, ratio)
			}
		}
	}
	// Google shows the flattest burst response 100 -> 500.
	g100 := findSeries(t, fig, "google short-IAT burst=100").Summary()
	g500 := findSeries(t, fig, "google short-IAT burst=500").Summary()
	if delta := g500.Median - g100.Median; delta > 60*time.Millisecond {
		t.Errorf("google 100->500 median delta %v, want small (paper ~15ms)", delta)
	}
}

func TestFig8LongIATShape(t *testing.T) {
	fig, err := Fig8Bursts(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	// AWS: bursts are *cheaper* than individual cold starts (image-store
	// caching), at every studied burst size.
	aws1 := findSeries(t, fig, "aws long-IAT burst=1").Summary()
	for _, burst := range []int{100, 300, 500} {
		s := findSeries(t, fig, "aws long-IAT burst="+itoa(burst)).Summary()
		if s.Median >= aws1.Median {
			t.Errorf("aws long-IAT burst=%d median %v should stay below single %v", burst, s.Median, aws1.Median)
		}
	}
	// Google: bursts are costlier than singles; 300 above 100; 500 drops
	// back below 300 (load-adaptive caching).
	g1 := findSeries(t, fig, "google long-IAT burst=1").Summary()
	g100 := findSeries(t, fig, "google long-IAT burst=100").Summary()
	g300 := findSeries(t, fig, "google long-IAT burst=300").Summary()
	g500 := findSeries(t, fig, "google long-IAT burst=500").Summary()
	if g100.Median <= g1.Median {
		t.Errorf("google burst-100 median %v should exceed single %v", g100.Median, g1.Median)
	}
	if g300.Median <= g100.Median {
		t.Errorf("google burst-300 median %v should exceed burst-100 %v", g300.Median, g100.Median)
	}
	if g500.Median >= g300.Median {
		t.Errorf("google burst-500 median %v should drop below burst-300 %v", g500.Median, g300.Median)
	}
	if g500.Median <= g1.Median {
		t.Errorf("google burst-500 median %v should stay above single %v", g500.Median, g1.Median)
	}
	// Azure: medians grow with burst size.
	az1 := findSeries(t, fig, "azure long-IAT burst=1").Summary()
	az100 := findSeries(t, fig, "azure long-IAT burst=100").Summary()
	az500 := findSeries(t, fig, "azure long-IAT burst=500").Summary()
	if !(az1.Median < az100.Median && az100.Median < az500.Median) {
		t.Errorf("azure long-IAT medians not increasing: %v %v %v", az1.Median, az100.Median, az500.Median)
	}
	// AWS and Google: no request in a cold burst lands in the warm range
	// (dedicated instances; §VI-D2). Azure may queue.
	for _, prov := range []string{"aws", "google"} {
		s := findSeries(t, fig, prov+" long-IAT burst=100")
		if s.Latencies.Min() < 110*time.Millisecond {
			t.Errorf("%s cold burst min %v dips into warm range", prov, s.Latencies.Min())
		}
	}
}

func TestFig9Shape(t *testing.T) {
	fig, err := Fig9Scheduling(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	aws := findSeries(t, fig, "aws burst=100")
	google := findSeries(t, fig, "google burst=100")
	azure := findSeries(t, fig, "azure burst=100")
	awsSum, gSum, azSum := aws.Summary(), google.Summary(), azure.Summary()

	// AWS: all requests on dedicated instances; everything under ~2s.
	if awsSum.P99 > 2200*time.Millisecond {
		t.Errorf("aws burst p99 %v, want < ~2s (no queueing)", awsSum.P99)
	}
	if aws.Colds != aws.Latencies.Len() {
		t.Errorf("aws served %d/%d cold; no-queue policy must not share instances",
			aws.Colds, aws.Latencies.Len())
	}
	// Ordering and magnitude: AWS << Google << Azure.
	if !(awsSum.Median < gSum.Median && gSum.Median < azSum.Median) {
		t.Errorf("fig9 median ordering violated: %v %v %v", awsSum.Median, gSum.Median, azSum.Median)
	}
	if azSum.Median < 8*time.Second {
		t.Errorf("azure burst median %v, want ~couple of orders above warm (paper 18.6s)", azSum.Median)
	}
	if azure.Colds >= azure.Latencies.Len()/3 {
		t.Errorf("azure spawned %d instances for %d requests; deep queueing expected",
			azure.Colds, azure.Latencies.Len())
	}
	// Obs 7: queueing policies inflate completion up to two orders of
	// magnitude over the no-queue policy.
	if r := float64(azSum.Median) / float64(awsSum.Median); r < 5 {
		t.Errorf("azure/aws burst median ratio %.1f, want >= 5", r)
	}
}

func TestFig10Shape(t *testing.T) {
	res, err := Fig10TraceTMR(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range fig10Classes {
		got := res.FracBelow10[c.class]
		if math.Abs(got-c.paperFrac) > 0.07 {
			t.Errorf("P(TMR<10) for %s = %.2f, paper %.2f", c.class, got, c.paperFrac)
		}
	}
	// Short functions are the most variable; long ones the steadiest.
	if res.FracBelow10[azuretrace.ClassSubSec] >= res.FracBelow10[azuretrace.ClassLong] {
		t.Error("sub-second functions should be more variable than long ones")
	}
	// >70% of functions run under 10 seconds (§VI-C1).
	under10 := azuretrace.ClassShare(res.Records, azuretrace.ClassSubSec) +
		azuretrace.ClassShare(res.Records, azuretrace.ClassMidRange)
	if under10 < 0.70 {
		t.Errorf("only %.0f%% of functions run <10s, want >70%%", under10*100)
	}
}

func TestTable1Shape(t *testing.T) {
	res, err := Table1(Options{Seed: 3, Samples: 700, Replicas: 40})
	if err != nil {
		t.Fatal(err)
	}
	cell := func(factor, prov string) Table1Cell {
		for _, row := range res.Rows {
			if row.Factor == factor {
				return row.Cells[prov]
			}
		}
		t.Fatalf("factor %q missing", factor)
		return Table1Cell{}
	}
	// Base warm is the normalizer: MR ~= 1 everywhere.
	for _, prov := range AllProviders {
		if c := cell("Base warm", prov); math.Abs(c.MR-1) > 0.05 {
			t.Errorf("%s base warm MR = %.2f", prov, c.MR)
		}
	}
	// Storage is a key tail source: TR >> 10 for both transfer providers.
	for _, prov := range TransferProviders {
		if c := cell("Storage transfer", prov); c.TR < 10 {
			t.Errorf("%s storage TR = %.1f, want > 10", prov, c.TR)
		}
		if c := cell("Inline transfer", prov); c.TR > 6 {
			t.Errorf("%s inline TR = %.1f, want small", prov, c.TR)
		}
	}
	// Azure transfers are n/a, as in the paper.
	if c := cell("Storage transfer", "azure"); !c.NA {
		t.Error("azure storage transfer should be n/a")
	}
	// Bursty long: Azure blows up by ~two orders of magnitude.
	if c := cell("Bursty long", "azure"); c.MR < 50 {
		t.Errorf("azure bursty-long MR = %.1f, want >> 10 (paper 309)", c.MR)
	}
	if c := cell("Bursty long", "aws"); c.MR > 30 {
		t.Errorf("aws bursty-long MR = %.1f, want moderate (paper 12)", c.MR)
	}
	// Cold starts: google/azure MR in the tens.
	for _, prov := range []string{"google", "azure"} {
		if c := cell("Base cold", prov); c.MR < 12 {
			t.Errorf("%s base cold MR = %.1f, want > 12", prov, c.MR)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	digits := []byte{}
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}
