// Command stellar-sim serves a simulated serverless provider as live HTTP
// endpoints, so STeLLAR's HTTP client (stellar run -transport http) and any
// plain HTTP tool can benchmark it over real sockets.
//
// Usage:
//
//	stellar-sim -provider aws -addr 127.0.0.1:8080 [-scale 10] \
//	            [-static static.json] [-endpoints endpoints.json] [-seed N]
//
// With -static, the listed functions are deployed at startup and the
// resulting endpoint URLs written to -endpoints. Functions respond to
// GET /fn/<name>?exec_ms=..&payload=.. and GET /healthz reports liveness.
// The server runs until interrupted.
package main

import (
	"os"
	"os/signal"
	"syscall"

	"github.com/stellar-repro/stellar/internal/cli"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	stop := make(chan struct{})
	go func() {
		<-sig
		close(stop)
	}()
	os.Exit(cli.SimMain(os.Args[1:], os.Stdout, os.Stderr, stop, nil))
}
