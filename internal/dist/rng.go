package dist

import (
	"hash/fnv"
	"math/rand"
)

// Streams derives independent deterministic random streams from a root seed.
// Each named component of the simulation gets its own *rand.Rand so that
// adding a component (or reordering sampling) does not perturb the draws seen
// by the others.
type Streams struct {
	seed int64
}

// NewStreams returns a stream factory rooted at seed.
func NewStreams(seed int64) *Streams { return &Streams{seed: seed} }

// Stream returns a deterministic RNG for the given component name. Calling
// Stream twice with the same name yields identically seeded, independent
// generators.
func (s *Streams) Stream(name string) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return rand.New(rand.NewSource(s.seed ^ int64(h.Sum64())))
}

// Seed returns the root seed.
func (s *Streams) Seed() int64 { return s.seed }
