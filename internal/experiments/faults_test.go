package experiments

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/faults"
)

func faultsOpts() FaultsOptions {
	return FaultsOptions{
		Provider:    "aws",
		Invocations: 200,
		Shards:      2,
		Seed:        3,
		IAT:         20 * time.Millisecond,
		Rates:       []float64{0, 0.2},
		Policies: []faults.Policy{
			{},
			{Timeout: time.Second, MaxRetries: 2, BackoffBase: 50 * time.Millisecond},
		},
	}
}

func TestRunFaultsGridShape(t *testing.T) {
	res, err := RunFaults(faultsOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("2 rates x 2 policies must give 4 cells, got %d", len(res.Cells))
	}
	// Rate-major order with the policy axis innermost.
	wantRates := []float64{0, 0, 0.2, 0.2}
	wantPolicies := []string{"none", "r2/t1s/b50ms", "none", "r2/t1s/b50ms"}
	for i, cell := range res.Cells {
		if cell.Rate != wantRates[i] || cell.Policy != wantPolicies[i] {
			t.Errorf("cell %d = (%g, %s), want (%g, %s)",
				i, cell.Rate, cell.Policy, wantRates[i], wantPolicies[i])
		}
		if cell.VirtualTime <= 0 {
			t.Errorf("cell %d: non-positive virtual time %v", i, cell.VirtualTime)
		}
	}
	if res.Provider != "aws" || res.Invocations != 200 || res.Shards != 2 || res.Seed != 3 {
		t.Fatalf("result header %+v does not echo the options", res)
	}
}

func TestFaultsOptionsValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*FaultsOptions)
	}{
		{"missing provider", func(o *FaultsOptions) { o.Provider = "" }},
		{"zero invocations", func(o *FaultsOptions) { o.Invocations = 0 }},
		{"more shards than invocations", func(o *FaultsOptions) { o.Invocations = 1; o.Shards = 2 }},
		{"negative rate", func(o *FaultsOptions) { o.Rates = []float64{-0.5} }},
		{"rate above one", func(o *FaultsOptions) { o.Rates = []float64{1.5} }},
		{"bad policy", func(o *FaultsOptions) { o.Policies = []faults.Policy{{MaxRetries: -1}} }},
		{"bad modes", func(o *FaultsOptions) { o.Modes = faults.Config{StorageTimeoutProb: 0.5} }},
		{"unknown provider", func(o *FaultsOptions) { o.Provider = "nonesuch" }},
	}
	for _, tc := range cases {
		opts := faultsOpts()
		tc.mutate(&opts)
		if _, err := RunFaults(opts); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestFaultsOptionsDefaults(t *testing.T) {
	o := FaultsOptions{Provider: "aws", Invocations: 100}.normalized()
	if o.Shards != 4 || o.IAT != 100*time.Millisecond || o.Burst != 1 {
		t.Fatalf("defaults: %+v", o)
	}
	if len(o.Rates) == 0 || len(o.Policies) != 2 {
		t.Fatalf("default axes: rates=%v policies=%d", o.Rates, len(o.Policies))
	}
	if o.Modes == (faults.Config{}) {
		t.Fatal("default injector template is empty")
	}
}

func TestPolicyLabel(t *testing.T) {
	cases := []struct {
		p    faults.Policy
		want string
	}{
		{faults.Policy{}, "none"},
		{faults.Policy{MaxRetries: 3, Timeout: 2 * time.Second,
			BackoffBase: 100 * time.Millisecond, BackoffCap: time.Second,
			Jitter: true, HedgeAfter: 500 * time.Millisecond},
			"r3/t2s/b100ms..1s/jitter/h500ms"},
		{faults.Policy{Timeout: time.Second}, "t1s"},
		{faults.Policy{MaxRetries: 1, BackoffBase: 10 * time.Millisecond}, "r1/b10ms"},
	}
	for _, tc := range cases {
		if got := PolicyLabel(tc.p); got != tc.want {
			t.Errorf("PolicyLabel(%+v) = %q, want %q", tc.p, got, tc.want)
		}
	}
}

func TestFaultsWriters(t *testing.T) {
	res, err := RunFaults(faultsOpts())
	if err != nil {
		t.Fatal(err)
	}

	var table strings.Builder
	WriteFaultsReport(&table, res)
	for _, want := range []string{"fault sweep", "rate", "none", "r2/t1s/b50ms"} {
		if !strings.Contains(table.String(), want) {
			t.Errorf("report missing %q:\n%s", want, table.String())
		}
	}

	var js strings.Builder
	if err := WriteFaultsJSON(&js, res); err != nil {
		t.Fatal(err)
	}
	var decoded FaultsResult
	if err := json.Unmarshal([]byte(js.String()), &decoded); err != nil {
		t.Fatalf("JSON output does not round-trip: %v", err)
	}
	if len(decoded.Cells) != len(res.Cells) || decoded.Seed != res.Seed {
		t.Fatalf("decoded %d cells seed %d, want %d cells seed %d",
			len(decoded.Cells), decoded.Seed, len(res.Cells), res.Seed)
	}

	var csv strings.Builder
	if err := WriteFaultsCSV(&csv, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 1+len(res.Cells) {
		t.Fatalf("CSV has %d lines, want header + %d cells", len(lines), len(res.Cells))
	}
	if !strings.HasPrefix(lines[0], "rate,policy,issued,succeeded") {
		t.Fatalf("CSV header %q", lines[0])
	}
	cols := len(strings.Split(lines[0], ","))
	for i, line := range lines[1:] {
		if got := len(strings.Split(line, ",")); got != cols {
			t.Errorf("row %d has %d columns, want %d: %q", i, got, cols, line)
		}
	}
}
