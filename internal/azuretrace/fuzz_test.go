package azuretrace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// FuzzParseCSV asserts two properties over arbitrary input: ReadCSV never
// panics, and any input it accepts survives a Write/Read round trip with
// every percentile preserved to WriteCSV's quantization (three decimals of
// a millisecond, i.e. 500ns).
func FuzzParseCSV(f *testing.F) {
	f.Add("function,p25_ms,p50_ms,p75_ms,p95_ms,p99_ms\nf1,1.000,2.000,3.000,4.000,5.000\n")
	f.Add("a,0.100,18.000,30.000,60.000,74.000\nb,5.000,9.000,14.000,20.000,31.000\n")
	f.Add("")
	f.Add("f,1,2,3\n")
	f.Add("f,5.0,4.0,3.0,2.0,1.0\n")
	f.Add("f,-1,2,3,4,5\n")
	f.Add("f,NaN,NaN,NaN,NaN,NaN\n")
	f.Add("f,+Inf,+Inf,+Inf,+Inf,+Inf\n")
	f.Add("f,1e300,1e301,1e302,1e303,1e304\n")
	f.Add("f,0.0001,0.0002,0.0003,0.0004,0.0005\n")
	f.Fuzz(func(t *testing.T, data string) {
		records, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, records); err != nil {
			t.Fatalf("WriteCSV on accepted records: %v", err)
		}
		again, err := ReadCSV(&buf)
		if err != nil {
			// The only legitimate reparse failure is quantization driving
			// a sub-500ns median to "0.000".
			for _, r := range records {
				if r.Median() < 500*time.Nanosecond {
					return
				}
			}
			t.Fatalf("round trip failed to reparse: %v\ninput: %q\nwritten: %q", err, data, buf.String())
		}
		if len(again) != len(records) {
			t.Fatalf("round trip changed record count: %d -> %d", len(records), len(again))
		}
		for i := range records {
			if again[i].Function != records[i].Function {
				t.Fatalf("record %d: function %q -> %q", i, records[i].Function, again[i].Function)
			}
			for _, p := range csvPercentiles {
				a, b := records[i].Percentiles[p], again[i].Percentiles[p]
				if diff := a - b; diff < -500*time.Nanosecond || diff > 500*time.Nanosecond {
					t.Fatalf("record %d p%d: %v -> %v (beyond quantization)", i, p, a, b)
				}
			}
		}
	})
}
