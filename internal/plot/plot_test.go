package plot

import (
	"strings"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/stats"
)

func sampleOf(vals ...time.Duration) *stats.Sample {
	return stats.FromDurations(vals)
}

func ms(v int) time.Duration { return time.Duration(v) * time.Millisecond }

func TestCDFRendersAllSeries(t *testing.T) {
	var sb strings.Builder
	err := CDF(&sb, "test chart", []Series{
		{Label: "fast", Sample: sampleOf(ms(1), ms(2), ms(3), ms(4))},
		{Label: "slow", Sample: sampleOf(ms(10), ms(20), ms(30), ms(40))},
	}, 60, 12)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"test chart", "fast", "slow", "median", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "linear x-axis") {
		t.Errorf("small-range chart should be linear:\n%s", out)
	}
}

func TestCDFLogScaleForWideRange(t *testing.T) {
	var sb strings.Builder
	err := CDF(&sb, "wide", []Series{
		{Label: "wide", Sample: sampleOf(ms(1), ms(10), ms(100), ms(1000), ms(10000))},
	}, 60, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "log x-axis") {
		t.Error("wide-range chart should switch to log scale")
	}
}

func TestCDFEmptySeriesErrors(t *testing.T) {
	var sb strings.Builder
	if err := CDF(&sb, "empty", []Series{{Label: "none", Sample: stats.NewSample(0)}}, 40, 8); err == nil {
		t.Fatal("expected error for empty series")
	}
}

func TestCDFDefaultsDimensions(t *testing.T) {
	var sb strings.Builder
	err := CDF(&sb, "d", []Series{{Label: "s", Sample: sampleOf(ms(5), ms(6))}}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(sb.String(), "\n")) < 10 {
		t.Error("default dimensions not applied")
	}
}

func TestSweepTable(t *testing.T) {
	var sb strings.Builder
	err := Sweep(&sb, "sweep", "payload", []XYSeries{
		{Label: "aws", Points: []XYPoint{
			{X: 1 << 10, Median: ms(11), P99: ms(20)},
			{X: 1 << 20, Median: ms(41), P99: ms(70)},
		}},
		{Label: "google", Points: []XYPoint{
			{X: 1 << 10, Median: ms(7), P99: ms(15)},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"payload", "1KB", "1MB", "aws", "google", "11ms / 20ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep missing %q:\n%s", want, out)
		}
	}
}

func TestFormatX(t *testing.T) {
	cases := map[float64]string{
		512:     "512",
		1 << 10: "1KB",
		1 << 20: "1MB",
		1 << 30: "1GB",
	}
	for x, want := range cases {
		if got := formatX(x); got != want {
			t.Errorf("formatX(%v) = %q, want %q", x, got, want)
		}
	}
}

func TestCSV(t *testing.T) {
	var sb strings.Builder
	err := CSV(&sb, []Series{{Label: "s", Sample: sampleOf(ms(1), ms(2), ms(2))}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "label,value_ns,frac" {
		t.Fatalf("header = %q", lines[0])
	}
	// Duplicate 2ms collapses to one CDF point: 2 data rows.
	if len(lines) != 3 {
		t.Fatalf("rows = %d, want 3:\n%s", len(lines), sb.String())
	}
	if !strings.HasPrefix(lines[1], "s,1000000,") {
		t.Fatalf("first row = %q", lines[1])
	}
}

func TestSummaryTable(t *testing.T) {
	var sb strings.Builder
	SummaryTable(&sb, []Series{{Label: "warm", Sample: sampleOf(ms(10), ms(20), ms(90))}})
	out := sb.String()
	if !strings.Contains(out, "warm") || !strings.Contains(out, "median") {
		t.Fatalf("summary table malformed:\n%s", out)
	}
}

func TestTimeline(t *testing.T) {
	windows := []stats.WindowSummary{
		{Start: 0, Stats: sampleOf(ms(500), ms(600)).Summarize()},
		{Start: 10 * time.Second, Stats: sampleOf(ms(50), ms(60)).Summarize()},
	}
	var sb strings.Builder
	if err := Timeline(&sb, "convergence", windows); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"convergence", "window", "median bar", "550ms", "####"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	// The first window's bar must be visibly longer than the second's.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	first := strings.Count(lines[2], "#")
	second := strings.Count(lines[3], "#")
	if first <= second {
		t.Errorf("bar lengths %d vs %d should reflect medians", first, second)
	}
	if err := Timeline(&sb, "empty", nil); err == nil {
		t.Error("expected error for empty timeline")
	}
}

func TestCDFSinglePointAndIdentical(t *testing.T) {
	var sb strings.Builder
	// A single observation and an all-identical series must not divide by
	// zero or collapse the axis.
	err := CDF(&sb, "degenerate", []Series{
		{Label: "one", Sample: sampleOf(ms(5))},
		{Label: "same", Sample: sampleOf(ms(5), ms(5), ms(5))},
	}, 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "one") || !strings.Contains(sb.String(), "same") {
		t.Fatalf("degenerate chart malformed:\n%s", sb.String())
	}
}

func TestSweepEmptySeries(t *testing.T) {
	var sb strings.Builder
	if err := Sweep(&sb, "empty", "x", nil); err != nil {
		t.Fatal(err) // an empty sweep renders just the header
	}
	if !strings.Contains(sb.String(), "x") {
		t.Fatal("missing header")
	}
}
