package cloud

import (
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/dist"
	"github.com/stellar-repro/stellar/internal/faults"
)

// warmInvokeAllocs measures steady-state allocations per run of a 16-invoke
// warm sequence under the given config. The first run is a warm-up: it pays
// the cold start, grows the goroutine pool and timer tables, and leaves the
// instance hot for the measured runs.
func warmInvokeAllocs(t *testing.T, cfg Config) float64 {
	t.Helper()
	eng := des.NewEngine()
	t.Cleanup(eng.Close)
	c, err := New(eng, cfg, dist.NewStreams(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Deploy(FunctionSpec{Name: "f", Runtime: RuntimePython, Method: DeployZIP}); err != nil {
		t.Fatal(err)
	}
	req := &Request{Fn: "f"}
	run := func() {
		eng.Spawn("req", func(p *des.Proc) {
			for i := 0; i < 16; i++ {
				if _, err := c.Invoke(p, req); err != nil {
					t.Error(err)
					return
				}
			}
		})
		eng.Run(0)
	}
	run()
	return testing.AllocsPerRun(50, run)
}

// TestWarmInvokeAllocParityWithInjector is the fault layer's alloc gate:
// the injector seam must add zero allocations per warm invocation, both
// when faults are compiled out (nil injector — the seed's fast path) and
// when an injector is present but structurally inert (throttle armed far
// above the offered load, no probabilistic modes). The inert cloud draws no
// randomness, so both runs replay the identical virtual trace and the
// comparison is exact.
func TestWarmInvokeAllocParityWithInjector(t *testing.T) {
	baseline := warmInvokeAllocs(t, testConfig())

	inert := testConfig()
	inert.Inject = &faults.Config{ThrottleLimit: 1 << 30, ThrottleWindow: time.Hour}
	withInjector := warmInvokeAllocs(t, inert)

	if withInjector > baseline {
		t.Fatalf("inert injector adds %.2f allocs per 16 warm invokes (%.2f -> %.2f); the seam must be free",
			withInjector-baseline, baseline, withInjector)
	}
	// Guard against the harness going degenerate: a warm invoke sequence
	// costing hundreds of allocs would mean the hot path regressed badly
	// enough that parity alone proves nothing.
	if perOp := baseline / 16; perOp > 8 {
		t.Fatalf("warm invoke costs %.1f allocs/op in steady state; hot path regressed", perOp)
	}
}
