package core

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/blobstore"
	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/dist"
)

// testCloudConfig is a small deterministic provider profile.
func testCloudConfig(name string) cloud.Config {
	return cloud.Config{
		Name:              name,
		PropagationRTT:    20 * time.Millisecond,
		FrontendDelay:     dist.Constant(2 * time.Millisecond),
		ResponseDelay:     dist.Constant(1 * time.Millisecond),
		InternalDelay:     dist.Constant(3 * time.Millisecond),
		RoutingDelay:      dist.Constant(1 * time.Millisecond),
		WarmOverhead:      dist.Constant(4 * time.Millisecond),
		SchedulerCapacity: 16,
		PlacementDelay:    dist.Constant(10 * time.Millisecond),
		Policy:            cloud.PolicyConfig{Kind: cloud.PolicyNoQueue},
		SandboxBoot:       dist.Constant(50 * time.Millisecond),
		WarmGenericPool:   true,
		PooledInit:        dist.Constant(40 * time.Millisecond),
		ImageStore:        blobstore.Config{Name: name + "-img", GetLatency: dist.Constant(30 * time.Millisecond)},
		PayloadStore: blobstore.Config{
			Name:       name + "-blob",
			GetLatency: dist.Constant(10 * time.Millisecond),
			PutLatency: dist.Constant(10 * time.Millisecond),
		},
		InlineLimitBytes:   6 << 20,
		InlineBandwidthBps: 264e6,
		KeepAlive:          cloud.KeepAlivePolicy{Fixed: 10 * time.Minute},
		Workers:            8,
	}
}

type harness struct {
	eng      *des.Engine
	cloud    *cloud.Cloud
	provider *SimProvider
	client   *Client
	deployer *Deployer
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	eng := des.NewEngine()
	t.Cleanup(eng.Close)
	cl, err := cloud.New(eng, testCloudConfig("sim"), dist.NewStreams(7))
	if err != nil {
		t.Fatal(err)
	}
	sp := &SimProvider{Cloud: cl}
	return &harness{
		eng:      eng,
		cloud:    cl,
		provider: sp,
		client:   &Client{Transport: NewSimTransport(eng, cl), RNG: rand.New(rand.NewSource(1))},
		deployer: NewDeployer(sp),
	}
}

func TestStaticConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		sc   StaticConfig
		ok   bool
	}{
		{"valid", StaticConfig{Provider: "sim", Functions: []FunctionConfig{{Name: "f", Runtime: "python3"}}}, true},
		{"no provider", StaticConfig{Functions: []FunctionConfig{{Name: "f"}}}, false},
		{"no functions", StaticConfig{Provider: "sim"}, false},
		{"unnamed", StaticConfig{Provider: "sim", Functions: []FunctionConfig{{}}}, false},
		{"dup", StaticConfig{Provider: "sim", Functions: []FunctionConfig{{Name: "f"}, {Name: "f"}}}, false},
		{"bad chain len", StaticConfig{Provider: "sim", Functions: []FunctionConfig{
			{Name: "f", Chain: &ChainConfig{Length: 1, Transfer: "inline"}}}}, false},
		{"bad transfer", StaticConfig{Provider: "sim", Functions: []FunctionConfig{
			{Name: "f", Chain: &ChainConfig{Length: 2, Transfer: "smoke"}}}}, false},
	}
	for _, tc := range cases {
		err := tc.sc.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestRuntimeConfigValidateDefaults(t *testing.T) {
	rc := RuntimeConfig{Samples: 10, IAT: Duration(time.Second)}
	if err := rc.Validate(); err != nil {
		t.Fatal(err)
	}
	if rc.BurstSize != 1 || rc.IATDist != IATFixed {
		t.Fatalf("defaults not applied: %+v", rc)
	}
	bad := []RuntimeConfig{
		{},
		{Samples: 10},
		{Samples: 10, IAT: Duration(time.Second), BurstSize: -1},
		{Samples: 10, IAT: Duration(time.Second), IATDist: "zipf"},
		{Samples: 10, IAT: Duration(time.Second), WarmupDiscard: -1},
	}
	for i, rc := range bad {
		if err := rc.Validate(); err == nil {
			t.Errorf("bad config %d passed validation", i)
		}
	}
}

func TestConfigFilesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	staticPath := filepath.Join(dir, "static.json")
	sc := &StaticConfig{Provider: "sim", Functions: []FunctionConfig{{
		Name: "f", Runtime: "go1.x", Method: "zip", Replicas: 3,
		Chain: &ChainConfig{Length: 2, Transfer: "storage", PayloadBytes: 1 << 20},
	}}}
	data := `{"provider":"sim","functions":[{"name":"f","runtime":"go1.x","method":"zip","replicas":3,` +
		`"chain":{"length":2,"transfer":"storage","payload_bytes":1048576}}]}`
	if err := writeFile(staticPath, data); err != nil {
		t.Fatal(err)
	}
	got, err := LoadStaticConfig(staticPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.Functions[0].Chain.PayloadBytes != sc.Functions[0].Chain.PayloadBytes {
		t.Fatalf("static config mismatch: %+v", got.Functions[0])
	}

	rtPath := filepath.Join(dir, "rt.json")
	if err := writeFile(rtPath, `{"samples":100,"iat":"3s","burst_size":10,"exec_time":"1s"}`); err != nil {
		t.Fatal(err)
	}
	rc, err := LoadRuntimeConfig(rtPath)
	if err != nil {
		t.Fatal(err)
	}
	if rc.IAT.Std() != 3*time.Second || rc.ExecTime.Std() != time.Second || rc.BurstSize != 10 {
		t.Fatalf("runtime config mismatch: %+v", rc)
	}
	if _, err := LoadRuntimeConfig(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestDurationJSON(t *testing.T) {
	var d Duration
	if err := d.UnmarshalJSON([]byte(`"250ms"`)); err != nil || d.Std() != 250*time.Millisecond {
		t.Fatalf("string form: %v %v", d, err)
	}
	if err := d.UnmarshalJSON([]byte(`1000000`)); err != nil || d.Std() != time.Millisecond {
		t.Fatalf("numeric form: %v %v", d, err)
	}
	if err := d.UnmarshalJSON([]byte(`"soon"`)); err == nil {
		t.Fatal("expected parse error")
	}
	out, err := Duration(3 * time.Second).MarshalJSON()
	if err != nil || string(out) != `"3s"` {
		t.Fatalf("marshal: %s %v", out, err)
	}
}

func TestDeployReplicasAndEndpointsFile(t *testing.T) {
	h := newHarness(t)
	eps, err := h.deployer.Deploy(&StaticConfig{Provider: "sim", Functions: []FunctionConfig{{
		Name: "f", Runtime: "python3", Method: "zip", Replicas: 4,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(eps.Endpoints) != 4 {
		t.Fatalf("%d endpoints, want 4", len(eps.Endpoints))
	}
	names := map[string]bool{}
	for _, ep := range eps.Endpoints {
		if !h.cloud.HasFunction(ep.Function) {
			t.Fatalf("endpoint %q not deployed in cloud", ep.Function)
		}
		if !strings.HasPrefix(ep.URL, "sim://sim/") {
			t.Fatalf("bad URL %q", ep.URL)
		}
		names[ep.Function] = true
	}
	if len(names) != 4 {
		t.Fatalf("replica names not unique: %v", names)
	}

	path := filepath.Join(t.TempDir(), "endpoints.json")
	if err := eps.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEndpoints(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Endpoints) != 4 || loaded.Provider != "sim" {
		t.Fatalf("roundtrip mismatch: %+v", loaded)
	}
}

func TestDeployChainCreatesMembers(t *testing.T) {
	h := newHarness(t)
	eps, err := h.deployer.Deploy(&StaticConfig{Provider: "sim", Functions: []FunctionConfig{{
		Name: "chain", Runtime: "go1.x", Method: "zip",
		Chain: &ChainConfig{Length: 3, Transfer: "inline", PayloadBytes: 1 << 10},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	ep := eps.Endpoints[0]
	if len(ep.Chain) != 3 {
		t.Fatalf("chain names = %v, want 3", ep.Chain)
	}
	for _, name := range ep.Chain {
		if !h.cloud.HasFunction(name) {
			t.Fatalf("chain member %q not deployed", name)
		}
	}
}

func TestDeployUnknownProvider(t *testing.T) {
	h := newHarness(t)
	_, err := h.deployer.Deploy(&StaticConfig{Provider: "nope", Functions: []FunctionConfig{{Name: "f"}}})
	if err == nil {
		t.Fatal("expected error for unknown provider")
	}
	_ = h
}

func TestTeardown(t *testing.T) {
	h := newHarness(t)
	_, err := h.provider.Deploy(FunctionConfig{Name: "f", Runtime: "python3", Method: "zip", Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.provider.Teardown("f"); err != nil {
		t.Fatal(err)
	}
	if h.cloud.HasFunction("f-r000") || h.cloud.HasFunction("f-r001") {
		t.Fatal("functions remain after teardown")
	}
	if err := h.provider.Teardown("f"); err == nil {
		t.Fatal("expected error tearing down twice")
	}
}

func TestBuildPlanFixedIAT(t *testing.T) {
	h := newHarness(t)
	eps := []Endpoint{{Function: "a", Provider: "sim"}, {Function: "b", Provider: "sim"}}
	plan, err := h.client.BuildPlan(eps, RuntimeConfig{Samples: 6, IAT: Duration(time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 6 {
		t.Fatalf("plan length %d", len(plan))
	}
	for i, pr := range plan {
		if pr.At != time.Duration(i)*time.Second {
			t.Fatalf("request %d at %v", i, pr.At)
		}
		want := eps[i%2].Function
		if pr.Endpoint.Function != want {
			t.Fatalf("request %d to %s, want round-robin %s", i, pr.Endpoint.Function, want)
		}
	}
}

func TestBuildPlanBursts(t *testing.T) {
	h := newHarness(t)
	eps := []Endpoint{{Function: "a", Provider: "sim"}}
	plan, err := h.client.BuildPlan(eps, RuntimeConfig{Samples: 10, IAT: Duration(time.Second), BurstSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 10 {
		t.Fatalf("plan length %d", len(plan))
	}
	// Bursts of 4,4,2 at t=0,1s,2s.
	for i, pr := range plan {
		want := time.Duration(i/4) * time.Second
		if pr.At != want {
			t.Fatalf("request %d at %v, want %v", i, pr.At, want)
		}
	}
}

func TestBuildPlanExponentialIAT(t *testing.T) {
	h := newHarness(t)
	eps := []Endpoint{{Function: "a", Provider: "sim"}}
	plan, err := h.client.BuildPlan(eps, RuntimeConfig{
		Samples: 50, IAT: Duration(time.Second), IATDist: IATExponential,
	})
	if err != nil {
		t.Fatal(err)
	}
	varied := false
	var prev time.Duration
	for i := 1; i < len(plan); i++ {
		gap := plan[i].At - plan[i-1].At
		if gap < 0 {
			t.Fatal("non-monotonic schedule")
		}
		if i > 1 && gap != prev {
			varied = true
		}
		prev = gap
	}
	if !varied {
		t.Fatal("exponential IATs look constant")
	}
	// Without an RNG the build must fail.
	h.client.RNG = nil
	if _, err := h.client.BuildPlan(eps, RuntimeConfig{
		Samples: 5, IAT: Duration(time.Second), IATDist: IATExponential,
	}); err == nil {
		t.Fatal("expected error without RNG")
	}
}

func TestBuildPlanNoEndpoints(t *testing.T) {
	h := newHarness(t)
	if _, err := h.client.BuildPlan(nil, RuntimeConfig{Samples: 5, IAT: Duration(time.Second)}); err == nil {
		t.Fatal("expected error for empty endpoints")
	}
}

func TestClientRunEndToEnd(t *testing.T) {
	h := newHarness(t)
	eps, err := h.deployer.Deploy(&StaticConfig{Provider: "sim", Functions: []FunctionConfig{{
		Name: "f", Runtime: "python3", Method: "zip",
	}}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.client.Run(eps.Endpoints, RuntimeConfig{
		Samples:       20,
		IAT:           Duration(3 * time.Second),
		WarmupDiscard: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latencies.Len() != 20 {
		t.Fatalf("measured %d samples", res.Latencies.Len())
	}
	if res.Colds != 0 {
		t.Fatalf("colds = %d after warmup discard", res.Colds)
	}
	// Warm latency is deterministic: 20 prop + 2 + 1 + 4 + 1 = 28ms.
	if med := res.Latencies.Median(); med != 28*time.Millisecond {
		t.Fatalf("median = %v", med)
	}
	if res.Summary().Count != 20 {
		t.Fatal("summary count wrong")
	}
}

func TestClientRunChainTransfers(t *testing.T) {
	h := newHarness(t)
	eps, err := h.deployer.Deploy(&StaticConfig{Provider: "sim", Functions: []FunctionConfig{{
		Name: "chain", Runtime: "go1.x", Method: "zip",
		Chain: &ChainConfig{Length: 2, Transfer: "storage", PayloadBytes: 1 << 20},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.client.Run(eps.Endpoints, RuntimeConfig{
		Samples:       10,
		IAT:           Duration(3 * time.Second),
		WarmupDiscard: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transfers.Len() != 10 {
		t.Fatalf("transfers = %d, want 10", res.Transfers.Len())
	}
	if res.Transfers.Median() <= 20*time.Millisecond {
		t.Fatalf("transfer median %v too small for storage path", res.Transfers.Median())
	}
}

func TestClientRunAllFailures(t *testing.T) {
	h := newHarness(t)
	eps := []Endpoint{{Function: "ghost", Provider: "sim"}}
	_, err := h.client.Run(eps, RuntimeConfig{Samples: 3, IAT: Duration(time.Second)})
	if err == nil {
		t.Fatal("expected error when all requests fail")
	}
}

func TestSimTransportUnknownProvider(t *testing.T) {
	h := newHarness(t)
	_, err := h.client.Transport.Execute([]PlannedRequest{{Endpoint: Endpoint{Provider: "other"}}})
	if err == nil {
		t.Fatal("expected error for unknown provider")
	}
}

func TestExecTimeAndPayloadOverridesReachCloud(t *testing.T) {
	h := newHarness(t)
	eps, err := h.deployer.Deploy(&StaticConfig{Provider: "sim", Functions: []FunctionConfig{{
		Name: "f", Runtime: "python3", Method: "zip",
	}}})
	if err != nil {
		t.Fatal(err)
	}
	base, err := h.client.Run(eps.Endpoints, RuntimeConfig{
		Samples: 5, IAT: Duration(3 * time.Second), WarmupDiscard: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	busy, err := h.client.Run(eps.Endpoints, RuntimeConfig{
		Samples: 5, IAT: Duration(3 * time.Second), WarmupDiscard: 1,
		ExecTime: Duration(500 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	if delta := busy.Latencies.Median() - base.Latencies.Median(); delta != 500*time.Millisecond {
		t.Fatalf("exec-time override delta = %v", delta)
	}
}

// writeFile is a tiny helper for config fixtures.
func writeFile(path, content string) error {
	return writeFileBytes(path, []byte(content))
}

func writeFileBytes(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func TestFunctionConfigExecTime(t *testing.T) {
	h := newHarness(t)
	eps, err := h.deployer.Deploy(&StaticConfig{Provider: "sim", Functions: []FunctionConfig{{
		Name: "f", Runtime: "go1.x", Method: "zip",
		ExecTime: Duration(300 * time.Millisecond),
	}}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.client.Run(eps.Endpoints, RuntimeConfig{
		Samples: 4, IAT: Duration(3 * time.Second), WarmupDiscard: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Warm deterministic latency 28ms + configured 300ms busy spin.
	if med := res.Latencies.Median(); med != 328*time.Millisecond {
		t.Fatalf("median = %v, want 328ms", med)
	}
}

func TestFanoutThroughDeployer(t *testing.T) {
	h := newHarness(t)
	eps, err := h.deployer.Deploy(&StaticConfig{Provider: "sim", Functions: []FunctionConfig{{
		Name: "sg", Runtime: "go1.x", Method: "zip",
		Chain: &ChainConfig{Length: 2, Transfer: "inline", PayloadBytes: 1 << 10, Fanout: 3},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.client.Run(eps.Endpoints, RuntimeConfig{
		Samples: 3, IAT: Duration(3 * time.Second), WarmupDiscard: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if got := h.cloud.Metrics().InternalInvocations; got != 12 {
		t.Fatalf("internal invocations = %d, want 12 (4 requests x fanout 3)", got)
	}
}
