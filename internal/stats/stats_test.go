package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func ms(v int) time.Duration { return time.Duration(v) * time.Millisecond }

func TestPercentileExact(t *testing.T) {
	s := FromDurations([]time.Duration{ms(1), ms(2), ms(3), ms(4), ms(5)})
	if got := s.Percentile(0); got != ms(1) {
		t.Fatalf("p0 = %v", got)
	}
	if got := s.Percentile(50); got != ms(3) {
		t.Fatalf("p50 = %v", got)
	}
	if got := s.Percentile(100); got != ms(5) {
		t.Fatalf("p100 = %v", got)
	}
	// Linear interpolation between ranks: p25 of 1..5 = 2ms.
	if got := s.Percentile(25); got != ms(2) {
		t.Fatalf("p25 = %v", got)
	}
}

func TestPercentileInterpolates(t *testing.T) {
	s := FromDurations([]time.Duration{ms(0), ms(10)})
	if got := s.Percentile(50); got != ms(5) {
		t.Fatalf("p50 = %v, want 5ms", got)
	}
	if got := s.Percentile(99); got != 9900*time.Microsecond {
		t.Fatalf("p99 = %v, want 9.9ms", got)
	}
}

func TestPercentileSingleAndEmpty(t *testing.T) {
	s := FromDurations([]time.Duration{ms(7)})
	if got := s.P99(); got != ms(7) {
		t.Fatalf("p99 of singleton = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty sample")
		}
	}()
	(&Sample{}).Percentile(50)
}

func TestTMR(t *testing.T) {
	s := NewSample(100)
	for i := 1; i <= 100; i++ {
		s.Add(ms(i))
	}
	tmr := s.TMR()
	// median 50.5ms, p99 ~99ms -> TMR ~1.96
	if tmr < 1.9 || tmr > 2.0 {
		t.Fatalf("TMR = %.3f, want ~1.96", tmr)
	}
}

func TestMRTR(t *testing.T) {
	s := FromDurations([]time.Duration{ms(440), ms(448), ms(450), ms(660)})
	base := ms(44)
	if mr := s.MR(base); math.Abs(mr-10.2) > 0.1 {
		t.Fatalf("MR = %.2f", mr)
	}
	if tr := s.TR(base); tr < 14 || tr > 15.2 {
		t.Fatalf("TR = %.2f", tr)
	}
}

func TestCDFMonotone(t *testing.T) {
	s := FromDurations([]time.Duration{ms(3), ms(1), ms(2), ms(2), ms(5)})
	cdf := s.CDF()
	if len(cdf) != 4 { // duplicate 2ms collapsed
		t.Fatalf("CDF has %d points, want 4", len(cdf))
	}
	prevV, prevF := time.Duration(-1), 0.0
	for _, pt := range cdf {
		if pt.Value <= prevV {
			t.Fatalf("CDF values not increasing: %v", cdf)
		}
		if pt.Frac < prevF {
			t.Fatalf("CDF fractions decreasing: %v", cdf)
		}
		prevV, prevF = pt.Value, pt.Frac
	}
	if last := cdf[len(cdf)-1]; last.Frac != 1.0 {
		t.Fatalf("CDF does not end at 1.0: %v", last.Frac)
	}
}

func TestFracBelow(t *testing.T) {
	s := FromDurations([]time.Duration{ms(1), ms(2), ms(3), ms(4)})
	if f := s.FracBelow(ms(2)); f != 0.5 {
		t.Fatalf("FracBelow(2ms) = %v", f)
	}
	if f := s.FracBelow(ms(0)); f != 0 {
		t.Fatalf("FracBelow(0) = %v", f)
	}
	if f := s.FracBelow(ms(10)); f != 1 {
		t.Fatalf("FracBelow(10ms) = %v", f)
	}
}

// TestFracBelowAndCDFEdgeCases: the degenerate samples every aggregation
// path can produce — empty (all invocations errored) and single-element.
func TestFracBelowAndCDFEdgeCases(t *testing.T) {
	empty := NewSample(0)
	if f := empty.FracBelow(ms(1)); f != 0 {
		t.Fatalf("empty FracBelow = %v, want 0", f)
	}
	if cdf := empty.CDF(); len(cdf) != 0 {
		t.Fatalf("empty CDF has %d points, want 0", len(cdf))
	}

	one := FromDurations([]time.Duration{ms(7)})
	if f := one.FracBelow(ms(6)); f != 0 {
		t.Fatalf("single-element FracBelow(below) = %v, want 0", f)
	}
	if f := one.FracBelow(ms(7)); f != 1 {
		t.Fatalf("single-element FracBelow(equal) = %v, want 1", f)
	}
	cdf := one.CDF()
	if len(cdf) != 1 || cdf[0].Value != ms(7) || cdf[0].Frac != 1 {
		t.Fatalf("single-element CDF = %v", cdf)
	}
}

func TestSub(t *testing.T) {
	s := FromDurations([]time.Duration{ms(30), ms(50), ms(10)})
	out := s.Sub(ms(20))
	vals := out.Values()
	if vals[0] != 0 || vals[1] != ms(10) || vals[2] != ms(30) {
		t.Fatalf("Sub = %v", vals)
	}
}

func TestSummary(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 1000; i++ {
		s.Add(ms(i))
	}
	sum := s.Summarize()
	if sum.Count != 1000 || sum.Min != ms(1) || sum.Max != ms(1000) {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Median < ms(499) || sum.Median > ms(502) {
		t.Fatalf("median = %v", sum.Median)
	}
	if sum.String() == "" {
		t.Fatal("summary string empty")
	}
}

func TestAddAllAndValuesSorted(t *testing.T) {
	s := NewSample(0)
	s.AddAll([]time.Duration{ms(5), ms(1), ms(3)})
	v := s.Values()
	if v[0] != ms(1) || v[1] != ms(3) || v[2] != ms(5) {
		t.Fatalf("values = %v", v)
	}
	// Adding after sorting must re-sort lazily.
	s.Add(ms(2))
	v = s.Values()
	if v[1] != ms(2) {
		t.Fatalf("values after add = %v", v)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSample(len(raw))
		for _, r := range raw {
			s.Add(time.Duration(r))
		}
		prev := time.Duration(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := s.Percentile(p)
			if v < prev || v < s.Min() || v > s.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the CDF is a valid distribution function of the sample.
func TestQuickCDFValid(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSample(len(raw))
		for _, r := range raw {
			s.Add(time.Duration(r) * time.Microsecond)
		}
		cdf := s.CDF()
		if len(cdf) == 0 || cdf[len(cdf)-1].Frac != 1 {
			return false
		}
		prevF := 0.0
		for _, pt := range cdf {
			if pt.Frac <= prevF {
				return false
			}
			// Frac must equal the fraction of samples <= Value.
			if math.Abs(pt.Frac-s.FracBelow(pt.Value)) > 1e-12 {
				return false
			}
			prevF = pt.Frac
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWindows(t *testing.T) {
	samples := []TimedSample{
		{At: 0, Latency: ms(10)},
		{At: 500 * time.Millisecond, Latency: ms(20)},
		{At: time.Second, Latency: ms(30)},
		{At: 3 * time.Second, Latency: ms(40)},
	}
	wins := Windows(samples, time.Second)
	if len(wins) != 3 {
		t.Fatalf("windows = %d, want 3 (empty window skipped)", len(wins))
	}
	if wins[0].Start != 0 || wins[0].Stats.Count != 2 || wins[0].Stats.Median != ms(15) {
		t.Fatalf("window 0 = %+v", wins[0])
	}
	if wins[1].Start != time.Second || wins[1].Stats.Count != 1 {
		t.Fatalf("window 1 = %+v", wins[1])
	}
	if wins[2].Start != 3*time.Second || wins[2].Stats.Median != ms(40) {
		t.Fatalf("window 2 = %+v", wins[2])
	}
}

func TestWindowsPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Windows(nil, 0)
}
