package des

import (
	"testing"
	"time"
)

// BenchmarkEventThroughput measures raw event dispatch rate (callbacks, no
// process switches) — the floor cost of a simulation step.
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine()
	defer e.Close()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			e.After(time.Microsecond, tick)
		}
	}
	b.ResetTimer()
	e.After(time.Microsecond, tick)
	e.Run(0)
	if count != b.N {
		b.Fatalf("fired %d of %d", count, b.N)
	}
}

// BenchmarkProcessSwitch measures a process sleep/resume round trip — the
// unit cost of every delay in the cloud model.
func BenchmarkProcessSwitch(b *testing.B) {
	e := NewEngine()
	defer e.Close()
	e.Spawn("switcher", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	e.Run(0)
}

// BenchmarkTimerCancel measures the schedule + indexed-cancel round trip —
// the keep-alive pattern of the cloud model (every warm hit arms and later
// cancels an expiry timer).
func BenchmarkTimerCancel(b *testing.B) {
	e := NewEngine()
	defer e.Close()
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := e.After(time.Hour, fn)
		t.Cancel()
	}
}

// BenchmarkSpawnExit measures process spawn/exit with goroutine reuse — the
// cloud model's process-per-request pattern.
func BenchmarkSpawnExit(b *testing.B) {
	e := NewEngine()
	defer e.Close()
	body := func(p *Proc) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Spawn("s", body)
		e.Run(0)
	}
}

// BenchmarkWaitTimeoutChurn measures WaitTimeout where the signal wins —
// the gateway queue-timeout pattern. Under lazy cancellation every
// iteration leaked a dead far-future timer into the heap, so this bench
// also exercises the indexed-removal path.
func BenchmarkWaitTimeoutChurn(b *testing.B) {
	e := NewEngine()
	defer e.Close()
	e.Spawn("churn", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			sig := NewSignal(e)
			e.After(time.Microsecond, sig.Fire)
			if !p.WaitTimeout(sig, time.Hour) {
				b.Error("signal should win")
				return
			}
		}
	})
	b.ResetTimer()
	e.Run(0)
}

// BenchmarkSignalBroadcast measures fan-out wake-ups: one firer releasing
// 16 waiters per round, the scatter-gather join pattern.
func BenchmarkSignalBroadcast(b *testing.B) {
	e := NewEngine()
	defer e.Close()
	const waiters = 16
	rounds := b.N/waiters + 1
	b.ResetTimer()
	for r := 0; r < rounds; r++ {
		sig := NewSignal(e)
		for i := 0; i < waiters; i++ {
			e.Spawn("w", func(p *Proc) { p.Wait(sig) })
		}
		e.Spawn("firer", func(p *Proc) {
			p.Sleep(time.Microsecond)
			sig.Fire()
		})
		e.Run(0)
	}
}

// BenchmarkQueuePutGet measures the producer/consumer handoff through a
// blocking queue — the request-buffer pattern.
func BenchmarkQueuePutGet(b *testing.B) {
	e := NewEngine()
	defer e.Close()
	q := NewQueue[int](e)
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Get(p)
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Put(i)
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	e.Run(0)
}

// BenchmarkResourceContention measures acquire/release under a contended
// FIFO resource with 64 concurrent processes.
func BenchmarkResourceContention(b *testing.B) {
	e := NewEngine()
	defer e.Close()
	r := NewResource(e, 4)
	per := b.N/64 + 1
	for i := 0; i < 64; i++ {
		e.Spawn("worker", func(p *Proc) {
			for j := 0; j < per; j++ {
				p.Acquire(r)
				p.Sleep(time.Microsecond)
				r.Release()
			}
		})
	}
	b.ResetTimer()
	e.Run(0)
}

// benchmarkKeepAliveTimers is the provider-scale keep-alive regime: 100k
// live timers (one per idle instance across thousands of tenants) while a
// steady arrival stream cancels one and re-arms it per operation, plus the
// natural trickle of expiries. The driver tick is a cancelable heap timer
// on purpose: cancelable events are never front-cached, so in heap mode
// every operation pays a push/pop against the full 100k-event heap — the
// honest cost the wheel is built to remove. With slack > 0 the keep-alives
// move to the timer wheel and the heap holds only the driver and the
// wheel's alarm.
func benchmarkKeepAliveTimers(b *testing.B, slack time.Duration) {
	const live = 100_000
	const life = 10 * time.Minute // well under the wheel horizon at 100ms ticks
	e := NewEngine()
	defer e.Close()
	if slack > 0 {
		e.SetTimerSlack(slack)
	}
	timers := make([]Timer, live)
	fns := make([]func(), live)
	for i := range fns {
		i := i
		fns[i] = func() { timers[i] = e.AfterSlack(life, fns[i]) }
	}
	for i := range timers {
		timers[i] = e.AfterSlack(time.Duration(i+1)*(life/live), fns[i])
	}
	n, stop, next := 0, 0, 0
	var tick func()
	tick = func() {
		i := next
		next++
		if next == live {
			next = 0
		}
		if timers[i].Cancel() {
			timers[i] = e.AfterSlack(life, fns[i])
		}
		n++
		if n < stop {
			e.After(time.Millisecond, tick)
		}
	}
	// Warm-up: grow the heap, handle table, and wheel node array to their
	// high-water marks so the timed region measures steady state.
	stop = 200
	e.After(time.Millisecond, tick)
	e.Run(e.Now() + time.Duration(stop+1)*time.Millisecond)
	n, stop = 0, b.N
	e.After(time.Millisecond, tick)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(e.Now() + time.Duration(b.N+1)*time.Millisecond)
	b.StopTimer()
	if n != b.N {
		b.Fatalf("ran %d of %d churn ops", n, b.N)
	}
}

// BenchmarkKeepAliveTimersHeap is the exact-heap baseline at 100k live timers.
func BenchmarkKeepAliveTimersHeap(b *testing.B) { benchmarkKeepAliveTimers(b, 0) }

// BenchmarkKeepAliveTimersWheel is the same churn on the slack wheel; the
// acceptance bar is >= 40% ns/op under the heap with 0 allocs/op.
func BenchmarkKeepAliveTimersWheel(b *testing.B) {
	benchmarkKeepAliveTimers(b, 100*time.Millisecond)
}

// BenchmarkCallbackChain measures a self-rescheduling callback chain — the
// execution form of the warm-invoke fast path: one reused callback value,
// no timer handle, no process switch, front-cache hit on every hop.
func BenchmarkCallbackChain(b *testing.B) {
	e := NewEngine()
	defer e.Close()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			e.CallAfter(time.Microsecond, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Call(tick)
	e.Run(0)
	if count != b.N {
		b.Fatalf("fired %d of %d", count, b.N)
	}
}
