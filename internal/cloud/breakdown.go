package cloud

import "time"

// ColdBreakdown itemizes the phases of one instance's cold start, recorded
// by the instance manager during spawn (§II-B steps 3-7).
type ColdBreakdown struct {
	// SchedulerQueue is time spent waiting for the cluster scheduler.
	SchedulerQueue time.Duration
	// Placement is the scheduler's placement decision time.
	Placement time.Duration
	// SandboxBoot is the MicroVM/container boot time.
	SandboxBoot time.Duration
	// ImageFetch is the function image retrieval from the image store.
	ImageFetch time.Duration
	// ChunkReads is the on-demand container chunk loading time.
	ChunkReads time.Duration
	// RuntimeInit is the language runtime initialization time.
	RuntimeInit time.Duration
	// SnapshotRestore is the snapshot-restore time when the fast path
	// replaced the boot pipeline (vHive/REAP extension).
	SnapshotRestore time.Duration
	// SnapshotCapture is the one-time capture overhead on the first boot.
	SnapshotCapture time.Duration
}

// Total sums the cold-start phases.
func (c ColdBreakdown) Total() time.Duration {
	return c.SchedulerQueue + c.Placement + c.SandboxBoot + c.ImageFetch +
		c.ChunkReads + c.RuntimeInit + c.SnapshotRestore + c.SnapshotCapture
}

// Breakdown itemizes where one invocation's latency went, implementing the
// paper's per-component performance analysis (§I: "the accurate measurement
// of latency contributions from different cloud infrastructure
// components"). The fields sum to the client-observed latency.
type Breakdown struct {
	// Propagation is the client<->datacenter round trip.
	Propagation time.Duration
	// Frontend is the front-end admission delay (internal-ingress delay
	// for function-to-function calls).
	Frontend time.Duration
	// Wire is the inline-payload transmission time on the ingress path.
	Wire time.Duration
	// Congestion is the ingestion queueing delay under concurrent load.
	Congestion time.Duration
	// SlowPath is retry/throttling slow-path delay.
	SlowPath time.Duration
	// Routing is the load balancer's routing decision.
	Routing time.Duration
	// QueueWait is time spent buffered waiting for an instance — cold
	// start time for requests that trigger a spawn, queueing behind other
	// requests under queueing policies.
	QueueWait time.Duration
	// QueueHandoff is the dispatch cost of receiving a recycled instance.
	QueueHandoff time.Duration
	// Overhead is the instance-side per-invocation overhead.
	Overhead time.Duration
	// PayloadFetch is the storage GET for storage-based incoming payloads.
	PayloadFetch time.Duration
	// Exec is the handler's busy-spin execution time.
	Exec time.Duration
	// PayloadStore is the storage PUT for storage-based outgoing payloads.
	PayloadStore time.Duration
	// Downstream is the full latency of the chained downstream invocation.
	Downstream time.Duration
	// Retried accumulates the time spent in failed (crashed) attempts and
	// retry backoffs.
	Retried time.Duration
	// ResponsePath is the response-side delay back through the front end.
	ResponsePath time.Duration
	// ColdStart itemizes the serving instance's spawn phases (zero value
	// unless this request was served by an instance created for it; its
	// Total is included in QueueWait, not additional).
	ColdStart ColdBreakdown
}

// Total sums the components; it equals the client-observed latency.
func (b Breakdown) Total() time.Duration {
	return b.Propagation + b.Frontend + b.Wire + b.Congestion + b.SlowPath +
		b.Routing + b.QueueWait + b.QueueHandoff + b.Overhead + b.PayloadFetch +
		b.Exec + b.PayloadStore + b.Downstream + b.Retried + b.ResponsePath
}
