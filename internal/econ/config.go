package econ

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Duration is a JSON-friendly time.Duration: it unmarshals from either a
// Go duration string ("250ms") or an integer nanosecond count, and always
// marshals back to the string form, so specs round-trip losslessly.
type Duration time.Duration

// UnmarshalJSON accepts "2s" or 2000000000.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		parsed, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("econ: bad duration %q: %w", s, err)
		}
		*d = Duration(parsed)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(data, &ns); err != nil {
		return fmt.Errorf("econ: duration must be a string or integer nanoseconds: %s", data)
	}
	*d = Duration(ns)
	return nil
}

// MarshalJSON writes the duration string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// AutoscalerSpec is the JSON shape of an AutoscalerConfig.
type AutoscalerSpec struct {
	Target           float64  `json:"target"`
	TickInterval     Duration `json:"tick_interval,omitempty"`
	ScaleDownWindow  Duration `json:"scale_down_window,omitempty"`
	PanicFactor      float64  `json:"panic_factor,omitempty"`
	PanicWindow      Duration `json:"panic_window,omitempty"`
	MaxScaleUpStep   int      `json:"max_scale_up_step,omitempty"`
	MaxScaleDownStep int      `json:"max_scale_down_step,omitempty"`
	Suspend          bool     `json:"suspend,omitempty"`
}

// ToConfig validates the spec and converts it, filling cadence defaults
// (2s tick, 60s scale-down window) when omitted.
func (s *AutoscalerSpec) ToConfig() (AutoscalerConfig, error) {
	cfg := AutoscalerConfig{
		Target:           s.Target,
		TickInterval:     time.Duration(s.TickInterval),
		ScaleDownWindow:  time.Duration(s.ScaleDownWindow),
		PanicFactor:      s.PanicFactor,
		PanicWindow:      time.Duration(s.PanicWindow),
		MaxScaleUpStep:   s.MaxScaleUpStep,
		MaxScaleDownStep: s.MaxScaleDownStep,
		Suspend:          s.Suspend,
	}
	if cfg.TickInterval == 0 {
		cfg.TickInterval = 2 * time.Second
	}
	if cfg.ScaleDownWindow == 0 {
		cfg.ScaleDownWindow = time.Minute
	}
	if err := cfg.Validate(); err != nil {
		return AutoscalerConfig{}, err
	}
	return cfg, nil
}

// BillingSpec is the JSON shape of a BillingConfig. Unlike the config
// struct it spells every rate out explicitly so that a spec file reads as
// a price sheet; "plan" may instead name a built-in plan, in which case
// the explicit rates must be absent.
type BillingSpec struct {
	Plan              string   `json:"plan,omitempty"`
	Name              string   `json:"name,omitempty"`
	BusyGBmsRate      *float64 `json:"busy_gbms_rate,omitempty"`
	IdleGBmsRate      *float64 `json:"idle_gbms_rate,omitempty"`
	SuspendedGBmsRate *float64 `json:"suspended_gbms_rate,omitempty"`
	PerRequestFee     *float64 `json:"per_request_fee,omitempty"`
}

// ToConfig validates the spec and converts it.
func (s *BillingSpec) ToConfig() (BillingConfig, error) {
	if s.Plan != "" {
		if s.Name != "" || s.BusyGBmsRate != nil || s.IdleGBmsRate != nil ||
			s.SuspendedGBmsRate != nil || s.PerRequestFee != nil {
			return BillingConfig{}, fmt.Errorf("econ: billing spec names plan %q and explicit rates; pick one", s.Plan)
		}
		return Plan(s.Plan)
	}
	cfg := BillingConfig{Name: s.Name}
	if cfg.Name == "" {
		cfg.Name = "custom"
	}
	if s.BusyGBmsRate != nil {
		cfg.BusyGBmsRate = *s.BusyGBmsRate
	}
	if s.IdleGBmsRate != nil {
		cfg.IdleGBmsRate = *s.IdleGBmsRate
	}
	if s.SuspendedGBmsRate != nil {
		cfg.SuspendedGBmsRate = *s.SuspendedGBmsRate
	}
	if s.PerRequestFee != nil {
		cfg.PerRequestFee = *s.PerRequestFee
	}
	if err := cfg.Validate(); err != nil {
		return BillingConfig{}, err
	}
	return cfg, nil
}

// FileSpec is an econ config file: the autoscaler policy and the billing
// plan a cost experiment applies. Either section may be omitted.
type FileSpec struct {
	Autoscaler *AutoscalerSpec `json:"autoscaler,omitempty"`
	Billing    *BillingSpec    `json:"billing,omitempty"`
}

// Loaded is a parsed and validated econ config file.
type Loaded struct {
	// Autoscaler is non-nil when the file configured a scale policy.
	Autoscaler *AutoscalerConfig
	// Billing is non-nil when the file configured a billing plan.
	Billing *BillingConfig
}

// ParseConfig parses and validates an econ config JSON document.
func ParseConfig(data []byte) (*Loaded, error) {
	var spec FileSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("econ: parse config: %w", err)
	}
	out := &Loaded{}
	if spec.Autoscaler != nil {
		cfg, err := spec.Autoscaler.ToConfig()
		if err != nil {
			return nil, err
		}
		out.Autoscaler = &cfg
	}
	if spec.Billing != nil {
		cfg, err := spec.Billing.ToConfig()
		if err != nil {
			return nil, err
		}
		out.Billing = &cfg
	}
	return out, nil
}

// LoadFile reads and parses an econ config JSON file.
func LoadFile(path string) (*Loaded, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("econ: read config: %w", err)
	}
	return ParseConfig(data)
}
