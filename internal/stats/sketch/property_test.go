package sketch

import (
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/dist"
	"github.com/stellar-repro/stellar/internal/stats"
)

// distFamilies spans the latency shapes the provider profiles are built
// from: mild and heavy log-normal tails, sub-exponential Weibull, Pareto
// power laws, and the fast-path/straggler mixtures used for storage GETs.
func distFamilies() map[string]dist.Dist {
	return map[string]dist.Dist{
		"lognormal-mild":  dist.LogNormalMedTail(45*time.Millisecond, 100*time.Millisecond),
		"lognormal-heavy": dist.LogNormalMedTail(90*time.Millisecond, 4*time.Second),
		"weibull":         dist.Weibull{Shape: 0.7, Scale: 120 * time.Millisecond},
		"pareto":          dist.Pareto{Xm: 10 * time.Millisecond, Alpha: 2.2},
		"mixture": dist.NewMixture(
			dist.Component{Weight: 0.97, D: dist.LogNormalMedTail(30*time.Millisecond, 80*time.Millisecond)},
			dist.Component{Weight: 0.03, D: dist.LogNormalMedTail(2*time.Second, 8*time.Second)},
		),
	}
}

// TestSketchQuantilesMatchExactAcrossFamilies is the property-test
// satellite: for every distribution family, sketch quantiles track exact
// Sample percentiles within the 1% acceptance band.
func TestSketchQuantilesMatchExactAcrossFamilies(t *testing.T) {
	n := 200_000
	if testing.Short() {
		n = 20_000
	}
	for name, d := range distFamilies() {
		d := d
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(1234))
			exact := stats.NewSample(n)
			sk := New(0)
			for i := 0; i < n; i++ {
				v := d.Sample(rng)
				exact.Add(v)
				sk.Add(v)
			}
			for _, p := range []float64{25, 50, 75, 90, 95, 99, 99.9} {
				got, want := sk.Percentile(p), exact.Percentile(p)
				if e := relErr(got, want); e > 0.01 {
					t.Errorf("p%v: sketch %v vs exact %v (rel err %.4f > 1%%)", p, got, want, e)
				}
			}
		})
	}
}

// TestShardSplitMergeEquivalence is the distribution-level shard property:
// for every family and several shard counts, merging per-shard sketches is
// byte-identical to sketching the unsharded stream.
func TestShardSplitMergeEquivalence(t *testing.T) {
	n := 50_000
	if testing.Short() {
		n = 8_000
	}
	for name, d := range distFamilies() {
		d := d
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(99))
			values := make([]time.Duration, n)
			for i := range values {
				values[i] = d.Sample(rng)
			}
			single := New(0)
			for _, v := range values {
				single.Add(v)
			}
			want := recordJSON(t, single)
			for _, shards := range []int{2, 5, 16} {
				parts := make([]*Sketch, shards)
				for i := range parts {
					parts[i] = New(0)
				}
				// Contiguous split, as the runner shards series.
				for i, v := range values {
					parts[i*shards/len(values)].Add(v)
				}
				merged := New(0)
				for _, p := range parts {
					mustMerge(t, merged, p)
				}
				if got := recordJSON(t, merged); got != want {
					t.Errorf("%d-shard merge differs from single stream", shards)
				}
			}
		})
	}
}

func recordJSON(t *testing.T, s *Sketch) string {
	t.Helper()
	b, err := json.Marshal(s.Record())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestAccuracyAtOneMillion is the acceptance gate: at n=1M, sketch p50 and
// p99 stay within 1% relative error of the exact percentiles, and the
// bucket count stays orders of magnitude below n.
func TestAccuracyAtOneMillion(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-sample accuracy gate skipped in short mode")
	}
	const n = 1_000_000
	d := dist.LogNormalMedTail(45*time.Millisecond, 450*time.Millisecond)
	rng := rand.New(rand.NewSource(2024))
	exact := stats.NewSample(n)
	sk := New(0)
	for i := 0; i < n; i++ {
		v := d.Sample(rng)
		exact.Add(v)
		sk.Add(v)
	}
	for _, p := range []float64{50, 99} {
		got, want := sk.Percentile(p), exact.Percentile(p)
		if e := relErr(got, want); e > 0.01 {
			t.Errorf("p%v at n=1M: sketch %v vs exact %v (rel err %.4f > 1%%)", p, got, want, e)
		}
	}
	if b := sk.Buckets(); b > 4096 {
		t.Errorf("sketch holds %d buckets at n=1M, want bounded (<= 4096)", b)
	}
	if e := relErr(sk.Mean(), exact.Mean()); e > 1e-9 {
		t.Errorf("mean should be (integer-)exact: sketch %v vs exact %v", sk.Mean(), exact.Mean())
	}
}
