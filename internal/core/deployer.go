package core

import (
	"fmt"

	"github.com/stellar-repro/stellar/internal/cloud"
)

// Provider is a deployer plugin (§IV): it knows how to deploy a
// provider-independent FunctionConfig into one concrete cloud and how to
// tear it down again.
type Provider interface {
	// Name returns the plugin's registry name.
	Name() string
	// Deploy creates the function (and its replicas and chain members) and
	// returns one endpoint per replica.
	Deploy(fc FunctionConfig) ([]Endpoint, error)
	// Teardown removes everything Deploy created for the base name.
	Teardown(baseName string) error
}

// Deployer drives provider plugins from a static configuration.
type Deployer struct {
	providers map[string]Provider
}

// NewDeployer registers the given plugins.
func NewDeployer(providers ...Provider) *Deployer {
	d := &Deployer{providers: make(map[string]Provider, len(providers))}
	for _, p := range providers {
		d.providers[p.Name()] = p
	}
	return d
}

// Provider looks up a registered plugin.
func (d *Deployer) Provider(name string) (Provider, bool) {
	p, ok := d.providers[name]
	return p, ok
}

// Deploy validates the static configuration and deploys every function,
// producing the endpoints file content.
func (d *Deployer) Deploy(sc *StaticConfig) (*Endpoints, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	p, ok := d.providers[sc.Provider]
	if !ok {
		return nil, fmt.Errorf("core: no provider plugin %q registered", sc.Provider)
	}
	out := &Endpoints{Provider: sc.Provider}
	for _, fc := range sc.Functions {
		eps, err := p.Deploy(fc)
		if err != nil {
			return nil, fmt.Errorf("core: deploy %q: %w", fc.Name, err)
		}
		out.Endpoints = append(out.Endpoints, eps...)
	}
	return out, nil
}

// replicaName names the i-th replica of a function.
func replicaName(base string, i, replicas int) string {
	if replicas <= 1 {
		return base
	}
	return fmt.Sprintf("%s-r%03d", base, i)
}

// chainName names the k-th downstream function of a chain entry.
func chainName(entry string, k int) string {
	return fmt.Sprintf("%s-c%d", entry, k)
}

// SimProvider deploys into a simulated cloud. It implements Provider.
type SimProvider struct {
	// Cloud is the simulated region to deploy into.
	Cloud *cloud.Cloud
	// BaseZipBytes optionally overrides the per-runtime base package size:
	// the effective bytes fetched from the image store at cold start. It
	// applies to both ZIP and container deployments — container runtimes
	// lazy-load shared base layers, so the per-function fetch is dominated
	// by the same code payload a ZIP carries (§VI-B3's explanation for Go
	// container cold starts matching Go ZIP).
	BaseZipBytes map[cloud.Runtime]int64

	deployed map[string][]string // base name -> all function names created
}

// Name implements Provider.
func (sp *SimProvider) Name() string { return sp.Cloud.Config().Name }

// Deploy implements Provider: it expands replicas and chains into concrete
// cloud.FunctionSpec deployments.
func (sp *SimProvider) Deploy(fc FunctionConfig) ([]Endpoint, error) {
	if sp.deployed == nil {
		sp.deployed = make(map[string][]string)
	}
	runtime := cloud.Runtime(fc.Runtime)
	method := cloud.DeployMethod(fc.Method)
	if method == "" {
		method = cloud.DeployZIP
	}
	replicas := fc.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	var endpoints []Endpoint
	var created []string
	fail := func(err error) ([]Endpoint, error) {
		for _, name := range created {
			_ = sp.Cloud.Remove(name)
		}
		return nil, err
	}
	for i := 0; i < replicas; i++ {
		entry := replicaName(fc.Name, i, replicas)
		chain := []string{entry}
		// Deploy chain members back to front so Chain.Next targets exist
		// by the time the entry is used.
		var hops int
		if fc.Chain != nil {
			hops = fc.Chain.Length - 1
		}
		names := make([]string, hops+1)
		names[0] = entry
		for k := 1; k <= hops; k++ {
			names[k] = chainName(entry, k)
		}
		for k := hops; k >= 0; k-- {
			spec := cloud.FunctionSpec{
				Name:            names[k],
				Runtime:         runtime,
				Method:          method,
				MemoryMB:        fc.MemoryMB,
				ExtraImageBytes: fc.ExtraImageBytes,
				ExecTime:        fc.ExecTime.Std(),
			}
			if base, ok := sp.BaseZipBytes[runtime]; ok {
				spec.BaseImageBytes = base
			}
			if fc.Chain != nil && k < hops {
				spec.Chain = &cloud.ChainSpec{
					Next:         names[k+1],
					Transfer:     cloud.TransferKind(fc.Chain.Transfer),
					PayloadBytes: fc.Chain.PayloadBytes,
					Fanout:       fc.Chain.Fanout,
				}
			}
			if err := sp.Cloud.Deploy(spec); err != nil {
				return fail(err)
			}
			created = append(created, names[k])
		}
		chain = append(chain, names[1:]...)
		endpoints = append(endpoints, Endpoint{
			URL:      fmt.Sprintf("sim://%s/%s", sp.Name(), entry),
			Provider: sp.Name(),
			Function: entry,
			Chain:    chain,
		})
	}
	sp.deployed[fc.Name] = append(sp.deployed[fc.Name], created...)
	return endpoints, nil
}

// Teardown implements Provider.
func (sp *SimProvider) Teardown(baseName string) error {
	names, ok := sp.deployed[baseName]
	if !ok {
		return fmt.Errorf("core: %q was not deployed via this plugin", baseName)
	}
	for _, name := range names {
		if err := sp.Cloud.Remove(name); err != nil {
			return err
		}
	}
	delete(sp.deployed, baseName)
	return nil
}
