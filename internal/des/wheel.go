package des

import (
	mbits "math/bits"
	"time"
)

// This file implements the engine's second timer facility: a hierarchical
// timing wheel for timers that tolerate tick-granularity slack.
//
// The exact 4-ary heap (engine.go) charges O(log n) per insert and cancel,
// with the constant dominated by pointer-chasing sifts once the heap holds
// hundreds of thousands of events. Provider-scale multi-tenant replay is
// exactly that regime: every idle instance of every tenant holds a live
// keep-alive timer, and every warm invocation cancels one and re-arms it.
// Those timers do not need nanosecond placement — a keep-alive of minutes
// is semantically unchanged by firing up to one tick late — so they can
// live on a classic two-level timing wheel instead:
//
//   - Level 0: 256 slots of one tick each (the next 255 ticks).
//   - Level 1: 64 slots of 256 ticks each (up to ~16k ticks out).
//
// Insert hashes the quantized deadline to a slot and head-inserts into a
// doubly-linked, index-addressed, free-listed node list: O(1), zero
// allocations in steady state. Cancel unlinks the node: O(1). Deadlines
// beyond the wheel's horizon fall back to the exact heap (still correct,
// merely not O(1)); they are rare by construction when the tick is chosen
// so that horizon = 16128 ticks covers the keep-alive range.
//
// The wheel is driven by the engine itself: a single cancelable heap event
// (the "alarm") is armed at the earliest quantized deadline the wheel
// holds. When it fires, the wheel advances to that tick, cascades any
// level-1 slot whose ticks now fit level 0, fires the due slot, and
// re-arms. Cancels leave the alarm in place (lazy): a stale alarm finds an
// empty slot, re-arms, and costs one heap pop — cheaper than re-scanning
// the wheel on every cancel.
//
// Determinism: the engine's clock only ever stops on exact tick multiples
// for wheel work, slot lists fire in a fixed (LIFO-of-insert) order, and
// the alarm shares the engine's sequence counter, so runs replay
// byte-identically. Timers never fire early: a deadline is rounded UP to
// the next tick boundary, so the callback runs in [deadline, deadline+tick].

const (
	wheelL0Bits = 8
	wheelL0Size = 1 << wheelL0Bits // ticks per level-0 revolution
	wheelL0Mask = wheelL0Size - 1
	wheelL1Size = 64 // level-1 slots of wheelL0Size ticks each

	// wheelMaxTicks is the farthest quantized offset the wheel accepts.
	// Bounding it to 63 level-0 revolutions keeps every reachable deadline's
	// level-1 slot unaliased (no two distinct 256-tick bases share a slot),
	// which is what lets cascade move whole slots without inspecting ticks.
	wheelMaxTicks = wheelL0Size * (wheelL1Size - 1)
)

// wheelNode is one pending slack timer, stored by value in a reusable
// array and linked by index, so churn recycles nodes without allocating.
type wheelNode struct {
	fn   func()
	tick int64 // quantized deadline, in ticks
	hid  int32 // the engine timer-handle slot owning this node
	prev int32 // previous node in the slot list, -1 at head
	next int32 // next node in the slot list, -1 at tail
	slot int32 // 0..wheelL0Size-1 = L0 slot, wheelL0Size+j = L1 slot j, -1 = free
}

// wheel is the two-level timing wheel. At most one exists per engine,
// created by SetTimerSlack and fed by AfterSlack.
type wheel struct {
	eng  *Engine
	tick Time  // tick duration (the slack granularity)
	cur  int64 // all ticks <= cur have fired

	nodes []wheelNode
	free  []int32 // recycled node indices
	count int     // live nodes across both levels

	l0     [wheelL0Size]int32 // head node index per L0 slot, -1 empty
	l1     [wheelL1Size]int32 // head node index per L1 slot, -1 empty
	l0bits [wheelL0Size / 64]uint64
	l1bits uint64

	// alarm is the single heap event driving the wheel; alarmTick is the
	// tick it is armed for, -1 when unarmed. alarmFn is bound once so
	// re-arming never allocates a closure.
	alarm     Timer
	alarmTick int64
	alarmFn   func()
}

func newWheel(e *Engine, tick Time) *wheel {
	w := &wheel{eng: e, tick: tick, cur: int64(e.now / tick), alarmTick: -1}
	for i := range w.l0 {
		w.l0[i] = -1
	}
	for i := range w.l1 {
		w.l1[i] = -1
	}
	w.alarmFn = w.onAlarm
	return w
}

// schedule registers fn at deadline at, rounded up to the next tick.
// Deadlines beyond the wheel's horizon use the exact heap instead; both
// paths return an ordinary cancelable Timer.
func (w *wheel) schedule(at Time, fn func()) Timer {
	e := w.eng
	// An empty, unarmed wheel has nothing anchored to cur; resync it to the
	// clock so an idle gap longer than the horizon cannot push every later
	// deadline onto the heap-fallback path. With an alarm still armed (a
	// stale one after the last cancel) cur must stay put: onAlarm assumes
	// the clock never passes an armed alarm's tick.
	if w.count == 0 && w.alarmTick < 0 {
		w.cur = int64(e.now / w.tick)
	}
	qt := int64((at + w.tick - 1) / w.tick)
	if qt <= w.cur {
		qt = w.cur + 1
	}
	if qt-w.cur > wheelMaxTicks {
		return e.scheduleTimer(at, fn)
	}

	var ni int32
	if n := len(w.free); n > 0 {
		ni = w.free[n-1]
		w.free = w.free[:n-1]
	} else {
		ni = int32(len(w.nodes))
		w.nodes = append(w.nodes, wheelNode{})
	}
	var id int32
	if n := len(e.freeHandles); n > 0 {
		id = e.freeHandles[n-1]
		e.freeHandles = e.freeHandles[:n-1]
	} else {
		id = int32(len(e.handles))
		e.handles = append(e.handles, timerHandle{})
	}
	h := &e.handles[id]
	h.idx = ni
	h.wheel = true

	nd := &w.nodes[ni]
	nd.fn, nd.tick, nd.hid = fn, qt, id
	w.place(ni, qt)
	w.count++
	if w.alarmTick < 0 || qt < w.alarmTick {
		w.arm(qt)
	}
	return Timer{eng: e, id: id, gen: h.gen}
}

// place links node ni into the slot for tick qt. Ticks within one level-0
// revolution of cur go to level 0 (each maps to a distinct slot); farther
// ticks go to level 1, where a slot holds one whole 256-tick base.
func (w *wheel) place(ni int32, qt int64) {
	nd := &w.nodes[ni]
	var head *int32
	var slot int32
	if qt-w.cur < wheelL0Size {
		s := int32(qt & wheelL0Mask)
		slot = s
		head = &w.l0[s]
		w.l0bits[s>>6] |= 1 << (uint(s) & 63)
	} else {
		j := int32((qt >> wheelL0Bits) & (wheelL1Size - 1))
		slot = wheelL0Size + j
		head = &w.l1[j]
		w.l1bits |= 1 << uint(j)
	}
	nd.slot = slot
	nd.prev = -1
	nd.next = *head
	if *head >= 0 {
		w.nodes[*head].prev = ni
	}
	*head = ni
}

// unlink removes node ni from its slot list and recycles it. The alarm is
// left armed even if this was the earliest node: a stale alarm fires, finds
// nothing due, and re-arms (lazy cancellation).
func (w *wheel) unlink(ni int32) {
	nd := &w.nodes[ni]
	if nd.prev >= 0 {
		w.nodes[nd.prev].next = nd.next
	} else if nd.slot < wheelL0Size {
		s := nd.slot
		w.l0[s] = nd.next
		if nd.next < 0 {
			w.l0bits[s>>6] &^= 1 << (uint(s) & 63)
		}
	} else {
		j := nd.slot - wheelL0Size
		w.l1[j] = nd.next
		if nd.next < 0 {
			w.l1bits &^= 1 << uint(j)
		}
	}
	if nd.next >= 0 {
		w.nodes[nd.next].prev = nd.prev
	}
	nd.fn = nil
	nd.prev, nd.next, nd.slot = -1, -1, -1
	w.free = append(w.free, ni)
	w.count--
}

// onAlarm advances the wheel to the armed tick, cascades ripe level-1
// slots down, fires everything due at this tick, and re-arms for the next
// occupied slot.
func (w *wheel) onAlarm() {
	t := w.alarmTick
	w.alarmTick = -1
	w.cur = t
	w.cascade(t)
	w.fireSlot(t)
	w.armNext()
}

// cascade moves every level-1 slot whose 256-tick base has come within the
// level-0 window down into level 0. All nodes in one L1 slot share a base
// (see wheelMaxTicks), so ripeness is decided by the head node alone.
func (w *wheel) cascade(t int64) {
	for bits := w.l1bits; bits != 0; bits &= bits - 1 {
		j := mbits.TrailingZeros64(bits)
		head := w.l1[j]
		if w.nodes[head].tick&^int64(wheelL0Mask) > t {
			continue
		}
		w.l1[j] = -1
		w.l1bits &^= 1 << uint(j)
		for ni := head; ni >= 0; {
			nxt := w.nodes[ni].next
			w.place(ni, w.nodes[ni].tick)
			ni = nxt
		}
	}
}

// fireSlot drains the level-0 slot due at tick t. Nodes are popped one at
// a time through the normal unlink path before their callback runs: a
// callback may cancel a sibling timer in this same slot, and detaching the
// whole list up front would corrupt the links it needs. Termination: a
// callback cannot insert into this slot (fresh deadlines quantize to
// >= t+1, and t+256 maps to level 1), so the list only shrinks.
func (w *wheel) fireSlot(t int64) {
	e := w.eng
	s := int32(t & wheelL0Mask)
	for w.l0[s] >= 0 {
		ni := w.l0[s]
		nd := &w.nodes[ni]
		fn, hid := nd.fn, nd.hid
		w.unlink(ni)
		h := &e.handles[hid]
		h.idx = -1
		h.wheel = false
		h.gen++
		e.freeHandles = append(e.freeHandles, hid)
		fn()
	}
}

// armNext scans the occupancy bitmaps for the earliest pending tick and
// arms the alarm there. Level-0 slot s within the current window holds
// exactly tick cur+1+((s-cur-1) mod 256); a level-1 slot's earliest
// possible tick is its head's 256-tick base.
func (w *wheel) armNext() {
	if w.count == 0 {
		return
	}
	base := w.cur + 1
	best := int64(-1)
	for wi, word := range w.l0bits {
		for ; word != 0; word &= word - 1 {
			s := int64(wi*64 + mbits.TrailingZeros64(word))
			t := base + ((s - base) & wheelL0Mask)
			if best < 0 || t < best {
				best = t
			}
		}
	}
	for bits := w.l1bits; bits != 0; bits &= bits - 1 {
		j := mbits.TrailingZeros64(bits)
		b := w.nodes[w.l1[j]].tick &^ int64(wheelL0Mask)
		if b < base {
			b = base
		}
		if best < 0 || b < best {
			best = b
		}
	}
	if best >= 0 && best != w.alarmTick {
		w.arm(best)
	}
}

// arm points the alarm at tick qt, canceling any later-armed alarm. The
// alarm is an ordinary cancelable heap timer with a pre-bound callback,
// so re-arming is allocation-free.
func (w *wheel) arm(qt int64) {
	if w.alarmTick >= 0 {
		w.alarm.Cancel()
	}
	w.alarmTick = qt
	w.alarm = w.eng.At(Time(qt)*w.tick, w.alarmFn)
}

// SetTimerSlack installs (tick > 0) or removes (tick == 0) the engine's
// coarse timer wheel. With a wheel installed, AfterSlack timers are
// quantized to the tick and fire up to one tick late — never early — at
// O(1) amortized insert/cancel cost; without one, AfterSlack is exactly
// After. The slack cannot change while slack timers are pending. Negative
// ticks panic.
func (e *Engine) SetTimerSlack(tick time.Duration) {
	if tick < 0 {
		panic("des: negative timer slack")
	}
	if tick == 0 {
		if e.wheel != nil && e.wheel.count > 0 {
			panic("des: SetTimerSlack(0) with slack timers pending")
		}
		e.wheel = nil
		return
	}
	if e.wheel != nil {
		if e.wheel.tick == tick {
			return
		}
		if e.wheel.count > 0 {
			panic("des: changing timer slack with slack timers pending")
		}
	}
	e.wheel = newWheel(e, tick)
}

// TimerSlack returns the configured slack tick, 0 when the wheel is off.
func (e *Engine) TimerSlack() time.Duration {
	if e.wheel == nil {
		return 0
	}
	return e.wheel.tick
}

// AfterSlack schedules fn to run d from now with tick-granularity slack:
// when a timer wheel is installed (SetTimerSlack), the deadline rounds up
// to the next tick and insert/cancel cost O(1) amortized with zero
// steady-state allocations; when no wheel is installed this is exactly
// After. Use it for timers whose semantics tolerate firing up to one tick
// late — keep-alive expiries, idle reaping — and keep latency-critical
// events on At/After.
func (e *Engine) AfterSlack(d time.Duration, fn func()) Timer {
	if e.wheel == nil {
		return e.scheduleTimer(e.now+d, fn)
	}
	return e.wheel.schedule(e.now+d, fn)
}

// SlackTimers reports how many timers currently live on the wheel
// (excluding beyond-horizon fallbacks, which live on the heap).
func (e *Engine) SlackTimers() int {
	if e.wheel == nil {
		return 0
	}
	return e.wheel.count
}
