// Livecloud: serve the simulated AWS profile as real local HTTP endpoints
// and benchmark it with STeLLAR's HTTP client — the same code path the
// framework uses against production clouds. Time is compressed 50x so the
// example finishes in seconds while simulating minutes of traffic.
package main

import (
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"github.com/stellar-repro/stellar/internal/core"
	"github.com/stellar-repro/stellar/internal/httpfaas"
	"github.com/stellar-repro/stellar/internal/plot"
	"github.com/stellar-repro/stellar/internal/providers"
)

func main() {
	const timeScale = 10 // 10 virtual seconds per wall second

	srv, err := httpfaas.NewServer(providers.MustGet("aws"), 42, timeScale)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer srv.Stop()
	fmt.Println("simulated AWS serving at", srv.BaseURL())

	// Deploy through STeLLAR's deployer with the live-HTTP provider plugin.
	deployer := core.NewDeployer(srv.Provider())
	eps, err := deployer.Deploy(&core.StaticConfig{
		Provider: "aws",
		Functions: []core.FunctionConfig{
			{Name: "api", Runtime: "go1.x", Method: "zip"},
			{Name: "pipeline", Runtime: "go1.x", Method: "zip",
				Chain: &core.ChainConfig{Length: 2, Transfer: "inline", PayloadBytes: 256 << 10}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, ep := range eps.Endpoints {
		fmt.Println("deployed", ep.URL)
	}

	// Probe one endpoint with a plain HTTP GET, like any HTTP tool could.
	resp, err := http.Get(eps.Endpoints[0].URL)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Println("probe status:", resp.Status)

	// Benchmark over real sockets with the STeLLAR HTTP client. The 3s
	// virtual IAT plays back at 300ms wall intervals under the time scale.
	client := &core.Client{Transport: &core.HTTPTransport{TimeScale: timeScale}}
	res, err := client.Run(eps.Endpoints, core.RuntimeConfig{
		Samples:       200,
		IAT:           core.Duration(3 * time.Second),
		WarmupDiscard: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHTTP-measured: %s (colds=%d, errors=%d)\n", res.Summary(), res.Colds, res.Errors)
	if res.Transfers.Len() > 0 {
		ts := res.Transfers.Summarize()
		fmt.Printf("instrumented chain transfers: median=%v p99=%v\n",
			ts.Median.Round(time.Millisecond), ts.P99.Round(time.Millisecond))
	}
	fmt.Printf("\nnote: traffic plays back %dx compressed on the wall clock; measured\n", timeScale)
	fmt.Println("latencies are rescaled to provider time, so they compare directly with")
	fmt.Println("the virtual-time experiments.")
	fmt.Println()
	if err := plot.CDF(os.Stdout, "HTTP-measured latency CDF (provider time)", []plot.Series{
		{Label: "mixed endpoints", Sample: res.Latencies},
	}, 72, 14); err != nil {
		log.Fatal(err)
	}
}
