package experiments

import (
	"strings"
	"testing"
)

func TestBreakdownStudyShares(t *testing.T) {
	res, err := BreakdownStudy(Options{Seed: 3, Samples: 400, Replicas: 30})
	if err != nil {
		t.Fatal(err)
	}
	for _, prov := range AllProviders {
		warm := res.Stats[prov][ScenarioWarm]
		cold := res.Stats[prov][ScenarioCold]
		if warm == nil || cold == nil {
			t.Fatalf("%s: missing scenarios", prov)
		}
		// Warm: no queue-wait; propagation is a visible share.
		if qw := warm.Components["queue-wait"]; qw.Max() != 0 {
			t.Errorf("%s warm: unexpected queue wait %v", prov, qw.Max())
		}
		if prop := warm.Components["propagation"].Mean(); prop == 0 {
			t.Errorf("%s warm: propagation missing", prov)
		}
		// Cold: queue-wait (the cold start) dominates the mean latency.
		coldRun := res.Latencies[prov][ScenarioCold]
		qwMean := cold.Components["queue-wait"].Mean()
		if float64(qwMean) < 0.5*float64(coldRun.Latencies.Mean()) {
			t.Errorf("%s cold: queue-wait %v should dominate mean %v",
				prov, qwMean, coldRun.Latencies.Mean())
		}
		// Cold phases recorded for every cold request, image fetch visible.
		if n := cold.Cold["cold/image-fetch"].Len(); n != coldRun.Colds {
			t.Errorf("%s cold: %d image-fetch phases for %d colds", prov, n, coldRun.Colds)
		}
		if cold.Cold["cold/image-fetch"].Mean() == 0 {
			t.Errorf("%s cold: image fetch phase empty", prov)
		}
	}
	// Azure bursts: queueing dominates far more than on AWS.
	awsQW := res.Stats["aws"][ScenarioBurstCold].Components["queue-wait"].Mean()
	azureQW := res.Stats["azure"][ScenarioBurstCold].Components["queue-wait"].Mean()
	if azureQW < 2*awsQW {
		t.Errorf("azure burst queue-wait %v should dwarf aws %v", azureQW, awsQW)
	}
}

func TestWriteBreakdownReport(t *testing.T) {
	res, err := BreakdownStudy(Options{Seed: 3, Samples: 200, Replicas: 20})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	WriteBreakdownReport(&sb, res)
	out := sb.String()
	for _, want := range []string{
		"breakdown", "aws / warm", "azure / bursty-cold", "queue-wait",
		"cold-start phases", "cold/image-fetch", "%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestReportIncludesBreakdownID(t *testing.T) {
	var sb strings.Builder
	if err := Report(&sb, "breakdown", Options{Seed: 3, Samples: 150, Replicas: 15}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "per-component latency contributions") {
		t.Fatal("Report did not dispatch breakdown study")
	}
}
