package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/stellar-repro/stellar/internal/azuretrace"
	"github.com/stellar-repro/stellar/internal/plot"
)

// WriteFigureReport renders a figure as text: per-series paper-vs-measured
// medians/tails plus an ASCII CDF chart.
func WriteFigureReport(w io.Writer, fig *Figure) error {
	fmt.Fprintf(w, "## %s — %s\n\n", fig.ID, fig.Title)
	for _, note := range fig.Notes {
		fmt.Fprintf(w, "note: %s\n", note)
	}
	fmt.Fprintf(w, "\n%-30s %12s %12s %12s %12s %7s\n",
		"series", "median", "paper-med", "p99", "paper-p99", "tmr")
	for _, s := range fig.Series {
		sum := s.Summary()
		fmt.Fprintf(w, "%-30s %12v %12s %12v %12s %7.1f\n",
			s.Label, sum.Median.Round(time.Millisecond), refStr(s.Paper.Median),
			sum.P99.Round(time.Millisecond), refStr(s.Paper.P99), sum.TMR)
	}
	fmt.Fprintln(w)
	series := make([]plot.Series, 0, len(fig.Series))
	for _, s := range fig.Series {
		series = append(series, plot.Series{Label: s.Label, Sample: s.Latencies})
	}
	// Very wide figures (e.g., full Fig. 8) chart better per provider
	// group; keep a single chart for up to eight series.
	if len(series) <= 8 {
		if err := plot.CDF(w, "CDF", series, 72, 18); err != nil {
			return err
		}
	}
	fmt.Fprintln(w)
	return nil
}

func refStr(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.Round(time.Millisecond).String()
}

// WriteSweepReport renders a payload-sweep figure (Fig. 6a / 7a style):
// median and p99 against the swept parameter, grouped per provider prefix.
func WriteSweepReport(w io.Writer, fig *Figure, xName string) error {
	groups := map[string]*plot.XYSeries{}
	var order []string
	for _, s := range fig.Series {
		prefix := strings.Fields(s.Label)[0]
		g, ok := groups[prefix]
		if !ok {
			g = &plot.XYSeries{Label: prefix}
			groups[prefix] = g
			order = append(order, prefix)
		}
		sum := s.Summary()
		g.Points = append(g.Points, plot.XYPoint{X: s.X, Median: sum.Median, P99: sum.P99})
	}
	sort.Strings(order)
	series := make([]plot.XYSeries, 0, len(order))
	for _, prefix := range order {
		series = append(series, *groups[prefix])
	}
	return plot.Sweep(w, fig.Title, xName, series)
}

// WriteTable1Report renders the reproduced Table I next to the paper's
// values, flagging cells above the paper's >10 predictability threshold.
func WriteTable1Report(w io.Writer, t *Table1Result) {
	fmt.Fprintf(w, "## table1 — MR / TR per tail-latency factor (measured vs paper)\n\n")
	fmt.Fprintf(w, "%-20s", "factor")
	for _, prov := range AllProviders {
		fmt.Fprintf(w, " | %-21s", prov+"  MR/TR (paper)")
	}
	fmt.Fprintln(w)
	for _, row := range t.Rows {
		fmt.Fprintf(w, "%-20s", row.Factor)
		for _, prov := range AllProviders {
			cell := row.Cells[prov]
			if cell.NA {
				fmt.Fprintf(w, " | %-21s", "n/a")
				continue
			}
			flag := " "
			if cell.MR > 10 || cell.TR > 10 {
				flag = "!"
			}
			fmt.Fprintf(w, " |%s%3.0f/%-4.0f (%3.0f/%-4.0f)", flag, cell.MR, cell.TR, cell.PaperMR, cell.PaperTR)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nbase warm medians:")
	for _, prov := range AllProviders {
		fmt.Fprintf(w, "  %s=%v", prov, t.BaseMedians[prov].Round(time.Millisecond))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "cells flagged '!' exceed the paper's MR/TR>10 predictability threshold")
}

// WriteFig10Report renders the trace-TMR analysis.
func WriteFig10Report(w io.Writer, r *Fig10Result) error {
	fmt.Fprintf(w, "## fig10 — %s\n\n", r.Figure.Title)
	fmt.Fprintf(w, "%-10s %18s %14s\n", "class", "P(TMR<10) meas", "paper")
	for _, c := range fig10Classes {
		fmt.Fprintf(w, "%-10s %18.2f %14.2f\n", c.class, r.FracBelow10[c.class], c.paperFrac)
	}
	fmt.Fprintf(w, "\nfunction-duration mix: <1s %.0f%%, 1-10s %.0f%%, >10s %.0f%%\n",
		100*azuretrace.ClassShare(r.Records, azuretrace.ClassSubSec),
		100*azuretrace.ClassShare(r.Records, azuretrace.ClassMidRange),
		100*azuretrace.ClassShare(r.Records, azuretrace.ClassLong))
	series := make([]plot.Series, 0, len(r.Figure.Series))
	for _, s := range r.Figure.Series {
		series = append(series, plot.Series{Label: s.Label, Sample: s.Latencies})
	}
	return plot.CDF(w, "TMR CDFs (axis = TMR*1000, dimensionless)", series, 72, 16)
}
