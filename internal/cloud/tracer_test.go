package cloud

import (
	"math/rand"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/dist"
	"github.com/stellar-repro/stellar/internal/trace"
)

func newTestTracer(cfg trace.Config) *trace.Tracer {
	return trace.New(cfg, rand.New(rand.NewSource(9)))
}

// TestTraceSingleInvokeMatchesLatency pins the tracer's ground truth on one
// cold invocation: the trace's total equals the client-observed latency, the
// spans tile it exactly, and the cold-start pipeline appears as detail spans.
func TestTraceSingleInvokeMatchesLatency(t *testing.T) {
	eng, c := newTestCloud(t, testConfig())
	deploy(t, c, FunctionSpec{Name: "f", ExecTime: 30 * time.Millisecond})
	tr := newTestTracer(trace.Config{SampleRate: 1})
	c.SetTracer(tr)

	r := invokeAt(eng, c, 0, &Request{Fn: "f"})
	eng.Run(0)
	if r.err != nil {
		t.Fatal(r.err)
	}
	recs := tr.Drain()
	if len(recs) != 1 {
		t.Fatalf("retained %d traces, want 1", len(recs))
	}
	rec := recs[0]
	if err := rec.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	if rec.Total() != r.lat {
		t.Fatalf("trace total %v != client-observed latency %v", rec.Total(), r.lat)
	}
	if !rec.Cold {
		t.Fatalf("first invocation not marked cold: %+v", rec)
	}
	var detail int
	stages := map[string]bool{}
	for _, sp := range rec.Spans {
		if sp.Detail {
			detail++
		}
		stages[sp.Stage] = true
	}
	if detail == 0 {
		t.Fatalf("cold invocation has no cold detail spans: %+v", rec.Spans)
	}
	for _, want := range []string{"propagation", "frontend", "routing", "queue-wait", "overhead", "exec", "response"} {
		if !stages[want] {
			t.Fatalf("trace missing %q stage: %+v", want, rec.Spans)
		}
	}
}

// TestTraceTilingInvariantUnderChaos drives a bursty workload with cold
// starts, queue waits, crashes/retries, and a storage-transfer chain, and
// requires every retained trace to satisfy the tiling invariant: top-level
// spans sum exactly to the observed latency.
func TestTraceTilingInvariantUnderChaos(t *testing.T) {
	cfg := testConfig()
	cfg.QueueHandoffDelay = dist.Constant(2 * time.Millisecond)
	cfg.CongestionThreshold = 4
	cfg.CongestionUnit = time.Millisecond
	cfg.Faults.CrashProb = 0.15
	cfg.Faults.Retries = 4
	cfg.Faults.RetryBackoff = dist.Constant(5 * time.Millisecond)
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "producer", ExecTime: 10 * time.Millisecond,
		Chain: &ChainSpec{Next: "consumer", Transfer: TransferStorage, PayloadBytes: 1 << 20}})
	deploy(t, c, FunctionSpec{Name: "consumer", ExecTime: 5 * time.Millisecond})
	tr := newTestTracer(trace.Config{SampleRate: 1, SlowestK: 8})
	c.SetTracer(tr)

	const n = 60
	results := make([]*result, n)
	for i := range results {
		// Three tight bursts force buffering, scale-out, and handoffs.
		at := time.Duration(i/20) * 5 * time.Second
		results[i] = invokeAt(eng, c, at, &Request{Fn: "producer"})
	}
	eng.Run(0)

	succeeded := 0
	for _, r := range results {
		if r.err == nil {
			succeeded++
		}
	}
	recs := tr.Drain()
	if len(recs) != succeeded {
		t.Fatalf("retained %d traces for %d successful invocations (dropped %d)",
			len(recs), succeeded, tr.Dropped())
	}
	var cold, retried int
	for i := range recs {
		if err := recs[i].Validate(); err != nil {
			t.Errorf("trace %d violates tiling: %v\nspans: %+v", recs[i].ID, err, recs[i].Spans)
		}
		if recs[i].Cold {
			cold++
		}
		if recs[i].Attempts > 1 {
			retried++
		}
	}
	if cold == 0 {
		t.Error("burst workload produced no cold traces")
	}
	if retried == 0 {
		t.Error("15% crash rate over 60 requests produced no retried traces")
	}
}

// TestTraceQueueTimeoutDiscarded: requests abandoned in the gateway queue
// error out and must not leave committed traces behind.
func TestTraceQueueTimeoutDiscarded(t *testing.T) {
	cfg := testConfig()
	cfg.QueueTimeout = time.Millisecond
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "f", ExecTime: 10 * time.Millisecond})
	tr := newTestTracer(trace.Config{SampleRate: 1})
	c.SetTracer(tr)
	r := invokeAt(eng, c, 0, &Request{Fn: "f"})
	eng.Run(0)
	if r.err == nil {
		// Cold start takes ~100ms, far beyond the 1ms queue timeout.
		t.Fatal("expected queue timeout")
	}
	if got := tr.Retained(); got != 0 {
		t.Fatalf("timed-out request left %d committed traces", got)
	}
}

// warmInvokeAllocsTraced mirrors warmInvokeAllocs with a tracer installed.
func warmInvokeAllocsTraced(t *testing.T, cfg Config, tcfg trace.Config) float64 {
	t.Helper()
	eng := des.NewEngine()
	t.Cleanup(eng.Close)
	c, err := New(eng, cfg, dist.NewStreams(1))
	if err != nil {
		t.Fatal(err)
	}
	c.SetTracer(newTestTracer(tcfg))
	if err := c.Deploy(FunctionSpec{Name: "f", Runtime: RuntimePython, Method: DeployZIP}); err != nil {
		t.Fatal(err)
	}
	req := &Request{Fn: "f"}
	run := func() {
		eng.Spawn("req", func(p *des.Proc) {
			for i := 0; i < 16; i++ {
				if _, err := c.Invoke(p, req); err != nil {
					t.Error(err)
					return
				}
			}
		})
		eng.Run(0)
	}
	run()
	return testing.AllocsPerRun(50, run)
}

// TestWarmInvokeAllocParityWithTracer is the tracer's alloc gate. A tracer
// that is installed but samples nothing must add zero allocations per warm
// invocation — the Begin fast path draws one random number and returns nil.
// (The fully disabled path — no SetTracer call — is byte-identical to the
// seed's and is covered by TestWarmInvokeAllocParityWithInjector.)
func TestWarmInvokeAllocParityWithTracer(t *testing.T) {
	baseline := warmInvokeAllocs(t, testConfig())

	idle := warmInvokeAllocsTraced(t, testConfig(), trace.Config{SampleRate: 0, SlowestK: 0})
	if idle > baseline {
		t.Fatalf("non-sampling tracer adds %.2f allocs per 16 warm invokes (%.2f -> %.2f); the seam must be free",
			idle-baseline, baseline, idle)
	}

	// Sampling steady state: pooled records and a full ring recycle every
	// buffer, so the only per-invoke cost is the End defer closure.
	sampling := warmInvokeAllocsTraced(t, testConfig(), trace.Config{SampleRate: 1, SlowestK: 4, RingCapacity: 8})
	if perOp := (sampling - baseline) / 16; perOp > 1 {
		t.Fatalf("sampling tracer adds %.2f allocs per warm invoke in steady state, want <= 1", perOp)
	}
}
