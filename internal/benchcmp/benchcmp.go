// Package benchcmp parses `go test -bench` output and gates benchmark
// regressions: median-of-runs per benchmark, geometric-mean ns/op ratio
// across the matched set, and a hard zero-allocation gate for paths whose
// baseline allocates nothing. It is dependency-free by design so the gate
// can run anywhere the repo builds (CI installs benchstat for display, but
// the pass/fail decision is made here).
package benchcmp

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Bench is one benchmark's metrics, medianed across repeated -count runs.
type Bench struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string
	// Runs is how many samples the median was taken over.
	Runs int
	// NsPerOp is the median time per operation.
	NsPerOp float64
	// AllocsPerOp is the median allocations per operation; valid only when
	// HasAllocs is set (the run used -benchmem).
	AllocsPerOp float64
	HasAllocs   bool
}

// ParseMedians reads `go test -bench` output (any number of interleaved
// -count runs, non-benchmark lines ignored) and returns per-benchmark
// medians keyed by name.
func ParseMedians(r io.Reader) (map[string]Bench, error) {
	type samples struct {
		ns, allocs []float64
	}
	byName := make(map[string]*samples)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		s := byName[name]
		if s == nil {
			s = &samples{}
			byName[name] = s
		}
		// After the iteration count, metrics come in value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchcmp: line %d: bad value %q: %w", line, fields[i], err)
			}
			switch fields[i+1] {
			case "ns/op":
				s.ns = append(s.ns, v)
			case "allocs/op":
				s.allocs = append(s.allocs, v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchcmp: %w", err)
	}
	out := make(map[string]Bench, len(byName))
	for name, s := range byName {
		if len(s.ns) == 0 {
			continue
		}
		b := Bench{Name: name, Runs: len(s.ns), NsPerOp: median(s.ns)}
		if len(s.allocs) > 0 {
			b.AllocsPerOp = median(s.allocs)
			b.HasAllocs = true
		}
		out[name] = b
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchcmp: no benchmark lines found")
	}
	return out, nil
}

func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Delta is one matched benchmark's old-vs-new movement.
type Delta struct {
	Name     string
	Old, New Bench
	// Ratio is New.NsPerOp / Old.NsPerOp (1.0 = unchanged).
	Ratio float64
	// AllocRegressed marks a zero-alloc path that now allocates: the old
	// median was 0 allocs/op and the new one is not.
	AllocRegressed bool
}

// Comparison is the full gate decision over two benchmark sets.
type Comparison struct {
	Deltas []Delta
	// Geomean is the geometric mean of ns/op ratios across matched
	// benchmarks — the headline "did the suite get slower" number.
	Geomean float64
	// OnlyOld and OnlyNew list benchmarks present in one set but not the
	// other (renames and deletions are surfaced, never silently dropped).
	OnlyOld, OnlyNew []string
}

// Compare matches the two sets by name and computes per-benchmark ratios
// plus the geomean.
func Compare(old, new map[string]Bench) (*Comparison, error) {
	c := &Comparison{}
	logSum, n := 0.0, 0
	for name, o := range old {
		nw, ok := new[name]
		if !ok {
			c.OnlyOld = append(c.OnlyOld, name)
			continue
		}
		if o.NsPerOp <= 0 {
			return nil, fmt.Errorf("benchcmp: %s: non-positive baseline ns/op %v", name, o.NsPerOp)
		}
		d := Delta{Name: name, Old: o, New: nw, Ratio: nw.NsPerOp / o.NsPerOp}
		if o.HasAllocs && nw.HasAllocs && o.AllocsPerOp == 0 && nw.AllocsPerOp > 0 {
			d.AllocRegressed = true
		}
		c.Deltas = append(c.Deltas, d)
		logSum += math.Log(d.Ratio)
		n++
	}
	for name := range new {
		if _, ok := old[name]; !ok {
			c.OnlyNew = append(c.OnlyNew, name)
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("benchcmp: no benchmarks in common")
	}
	sort.Slice(c.Deltas, func(i, j int) bool { return c.Deltas[i].Name < c.Deltas[j].Name })
	sort.Strings(c.OnlyOld)
	sort.Strings(c.OnlyNew)
	c.Geomean = math.Exp(logSum / float64(n))
	return c, nil
}

// Gate returns the regression verdict: an error describing every violated
// gate, or nil when the comparison passes. maxRegressPct is the allowed
// geomean ns/op slowdown in percent (15 = fail beyond +15%); a negative
// value disables the time gate (alloc gates always apply).
func (c *Comparison) Gate(maxRegressPct float64) error {
	var fails []string
	if maxRegressPct >= 0 {
		limit := 1 + maxRegressPct/100
		if c.Geomean > limit {
			fails = append(fails, fmt.Sprintf(
				"geomean ns/op ratio %.4f exceeds +%.0f%% limit (%.4f)",
				c.Geomean, maxRegressPct, limit))
		}
	}
	for _, d := range c.Deltas {
		if d.AllocRegressed {
			fails = append(fails, fmt.Sprintf(
				"%s: zero-alloc path now allocates (%.1f -> %.1f allocs/op)",
				d.Name, d.Old.AllocsPerOp, d.New.AllocsPerOp))
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("benchcmp: %d gate failure(s):\n  %s",
			len(fails), strings.Join(fails, "\n  "))
	}
	return nil
}

// GateBudgets enforces absolute allocation budgets on a benchmark set:
// budgets maps a benchmark name to its maximum allowed allocs/op. Unlike
// the zero-alloc regression gate (which compares against a baseline), a
// budget is a hard contract on the candidate run alone — a benchmark that
// is missing from the set, lacks -benchmem data, or exceeds its budget all
// fail, so a renamed or silently-dropped benchmark cannot green-light the
// gate.
func GateBudgets(set map[string]Bench, budgets map[string]float64) error {
	names := make([]string, 0, len(budgets))
	for name := range budgets {
		names = append(names, name)
	}
	sort.Strings(names)
	var fails []string
	for _, name := range names {
		b, ok := set[name]
		switch {
		case !ok:
			fails = append(fails, fmt.Sprintf("%s: not present in the benchmark output", name))
		case !b.HasAllocs:
			fails = append(fails, fmt.Sprintf("%s: no allocs/op data (run with -benchmem)", name))
		case b.AllocsPerOp > budgets[name]:
			fails = append(fails, fmt.Sprintf("%s: %.1f allocs/op exceeds budget of %.0f",
				name, b.AllocsPerOp, budgets[name]))
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("benchcmp: %d alloc-budget failure(s):\n  %s",
			len(fails), strings.Join(fails, "\n  "))
	}
	return nil
}

// Write renders the comparison as a fixed-width table.
func (c *Comparison) Write(w io.Writer) {
	fmt.Fprintf(w, "%-28s %14s %14s %8s %16s\n", "benchmark", "old ns/op", "new ns/op", "ratio", "allocs/op")
	for _, d := range c.Deltas {
		allocs := "-"
		if d.Old.HasAllocs && d.New.HasAllocs {
			allocs = fmt.Sprintf("%.0f -> %.0f", d.Old.AllocsPerOp, d.New.AllocsPerOp)
			if d.AllocRegressed {
				allocs += " !"
			}
		}
		fmt.Fprintf(w, "%-28s %14.1f %14.1f %8.3f %16s\n",
			d.Name, d.Old.NsPerOp, d.New.NsPerOp, d.Ratio, allocs)
	}
	fmt.Fprintf(w, "%-28s %14s %14s %8.4f\n", "geomean", "", "", c.Geomean)
	for _, name := range c.OnlyOld {
		fmt.Fprintf(w, "only in old: %s\n", name)
	}
	for _, name := range c.OnlyNew {
		fmt.Fprintf(w, "only in new: %s\n", name)
	}
}
