package trace

import (
	"fmt"
	"sort"
	"time"

	"github.com/stellar-repro/stellar/internal/des"
)

// SpanRecord is one span in serialized form (JSON-stable stage names,
// nanosecond virtual timestamps).
type SpanRecord struct {
	// Stage is the stage's wire name (Stage.String).
	Stage string `json:"stage"`
	// Attempt is the service attempt (1-based), 0 outside the retry loop.
	Attempt int `json:"attempt,omitempty"`
	// StartNS is the span's virtual start time in nanoseconds.
	StartNS int64 `json:"start_ns"`
	// DurNS is the span's duration in nanoseconds.
	DurNS int64 `json:"dur_ns"`
	// Detail marks cold-start detail spans, which nest inside queue-wait
	// and are excluded from the tiling invariant.
	Detail bool `json:"detail,omitempty"`
}

// RequestRecord is one request's full trace in serialized form: the unit of
// export, persistence (results.RunRecord.Traces), and attribution.
type RequestRecord struct {
	// ID is the request's per-shard sequence number.
	ID uint64 `json:"id"`
	// Shard is the simulation shard that produced the trace.
	Shard int `json:"shard"`
	// Fn is the invoked function.
	Fn string `json:"fn"`
	// Cold reports whether the final serving instance was cold.
	Cold bool `json:"cold,omitempty"`
	// Slow marks traces retained via the slowest-K path (as opposed to, or
	// in addition to, head sampling).
	Slow bool `json:"slow,omitempty"`
	// Attempts counts service attempts (1 = no retries).
	Attempts int `json:"attempts"`
	// Workflow, Node, and Parent link node invocations of one orchestrated
	// workflow into a trace tree (see Req.SetNode): Workflow identifies the
	// instance, Node this invocation's DAG node, and Parent the node whose
	// delivery fired it ("" at the root). All zero outside workflows.
	Workflow uint64 `json:"workflow,omitempty"`
	Node     string `json:"node,omitempty"`
	Parent   string `json:"parent,omitempty"`
	// StartNS and EndNS bound the request in virtual nanoseconds.
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
	// Spans are the recorded stage intervals, in recording order.
	Spans []SpanRecord `json:"spans"`
}

// Total returns the request's client-observed latency.
func (r *RequestRecord) Total() time.Duration {
	return time.Duration(r.EndNS - r.StartNS)
}

// Validate checks the record's structural invariants: known stage names,
// spans inside the request window, and — the property the attribution
// report rests on — top-level spans tiling [start, end] exactly, so
// per-stage durations sum to the observed latency.
func (r *RequestRecord) Validate() error {
	if r.EndNS < r.StartNS {
		return fmt.Errorf("trace %d: end %d before start %d", r.ID, r.EndNS, r.StartNS)
	}
	var sum int64
	prevEnd := r.StartNS
	for i, sp := range r.Spans {
		st, ok := stageByName[sp.Stage]
		if !ok {
			return fmt.Errorf("trace %d: span %d has unknown stage %q", r.ID, i, sp.Stage)
		}
		if st.Detail() != sp.Detail {
			return fmt.Errorf("trace %d: span %d stage %q detail flag mismatch", r.ID, i, sp.Stage)
		}
		if sp.DurNS <= 0 {
			return fmt.Errorf("trace %d: span %d (%s) has non-positive duration %d", r.ID, i, sp.Stage, sp.DurNS)
		}
		if sp.Detail {
			// Cold detail may start before the traced request arrived (a
			// spawn triggered by an earlier request can be granted to this
			// one), but it cannot outlive the request.
			if sp.StartNS+sp.DurNS > r.EndNS {
				return fmt.Errorf("trace %d: span %d (%s) outlives the request", r.ID, i, sp.Stage)
			}
			continue
		}
		if sp.StartNS < r.StartNS || sp.StartNS+sp.DurNS > r.EndNS {
			return fmt.Errorf("trace %d: span %d (%s) outside request window", r.ID, i, sp.Stage)
		}
		if sp.StartNS != prevEnd {
			return fmt.Errorf("trace %d: span %d (%s) starts at %d, want %d (top-level spans must tile)",
				r.ID, i, sp.Stage, sp.StartNS, prevEnd)
		}
		prevEnd = sp.StartNS + sp.DurNS
		sum += sp.DurNS
	}
	if sum != r.EndNS-r.StartNS {
		return fmt.Errorf("trace %d: top-level spans sum to %dns, observed latency %dns",
			r.ID, sum, r.EndNS-r.StartNS)
	}
	return nil
}

// record converts a committed Req into its serialized form.
func (r *Req) record(slow bool) RequestRecord {
	rec := RequestRecord{
		ID:       r.id,
		Fn:       r.fn,
		Cold:     r.cold,
		Slow:     slow,
		Attempts: int(r.attempts),
		Workflow: r.wf,
		Node:     r.node,
		Parent:   r.parent,
		StartNS:  int64(r.start),
		EndNS:    int64(r.end),
		Spans:    make([]SpanRecord, 0, len(r.spans)),
	}
	if rec.Attempts == 0 {
		rec.Attempts = 1
	}
	for _, sp := range r.spans {
		rec.Spans = append(rec.Spans, SpanRecord{
			Stage:   sp.Stage.String(),
			Attempt: int(sp.Attempt),
			StartNS: int64(sp.Start),
			DurNS:   int64(sp.Dur),
			Detail:  sp.Stage.Detail(),
		})
	}
	return rec
}

// Drain converts every retained trace to its serialized record, recycles
// the buffers, and resets the tracer for further use. Records are sorted by
// (start, id), so output is deterministic for a deterministic simulation.
func (t *Tracer) Drain() []RequestRecord {
	if t == nil {
		return nil
	}
	recs := make([]RequestRecord, 0, t.n+len(t.slow))
	for _, r := range t.slow {
		recs = append(recs, r.record(true))
		t.recycle(r)
	}
	t.slow = t.slow[:0]
	for i := 0; i < t.n; i++ {
		r := t.ring[(t.head+i)%len(t.ring)]
		recs = append(recs, r.record(false))
		t.recycle(r)
	}
	for i := range t.ring {
		t.ring[i] = nil
	}
	t.head, t.n = 0, 0
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].StartNS != recs[j].StartNS {
			return recs[i].StartNS < recs[j].StartNS
		}
		return recs[i].ID < recs[j].ID
	})
	return recs
}

// Micros converts a virtual-nanosecond timestamp to the microsecond unit
// used by trace viewers.
func microsNS(ns int64) float64 { return des.Micros(time.Duration(ns)) }
