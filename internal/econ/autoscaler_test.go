package econ

import (
	"math"
	"strings"
	"testing"
	"time"
)

func validASConfig() AutoscalerConfig {
	return AutoscalerConfig{
		Target:          1,
		TickInterval:    2 * time.Second,
		ScaleDownWindow: time.Minute,
	}
}

func TestAutoscalerConfigValidate(t *testing.T) {
	valid := validASConfig()
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*AutoscalerConfig)
		want string
	}{
		{"zero target", func(c *AutoscalerConfig) { c.Target = 0 }, "target"},
		{"negative target", func(c *AutoscalerConfig) { c.Target = -1 }, "target"},
		{"nan target", func(c *AutoscalerConfig) { c.Target = nan() }, "target"},
		{"inf target", func(c *AutoscalerConfig) { c.Target = inf() }, "target"},
		{"zero tick", func(c *AutoscalerConfig) { c.TickInterval = 0 }, "tick interval"},
		{"window below tick", func(c *AutoscalerConfig) { c.ScaleDownWindow = time.Second }, "scale-down window"},
		{"negative panic factor", func(c *AutoscalerConfig) { c.PanicFactor = -1 }, "panic factor"},
		{"nan panic factor", func(c *AutoscalerConfig) { c.PanicFactor = nan() }, "panic factor"},
		{"negative panic window", func(c *AutoscalerConfig) { c.PanicWindow = -time.Second }, "panic window"},
		{"negative up step", func(c *AutoscalerConfig) { c.MaxScaleUpStep = -1 }, "step"},
		{"negative down step", func(c *AutoscalerConfig) { c.MaxScaleDownStep = -1 }, "step"},
	}
	for _, tc := range cases {
		cfg := validASConfig()
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestAutoscalerDefaults(t *testing.T) {
	a := NewAutoscaler(validASConfig())
	cfg := a.Config()
	if cfg.PanicFactor != 2 {
		t.Errorf("default panic factor = %v, want 2", cfg.PanicFactor)
	}
	if cfg.PanicWindow != 6*cfg.TickInterval {
		t.Errorf("default panic window = %v, want %v", cfg.PanicWindow, 6*cfg.TickInterval)
	}
	if got := len(a.ring); got != 30 {
		t.Errorf("ring slots = %d, want 30 (60s window / 2s tick)", got)
	}
}

func TestAutoscalerRingMinOneSlot(t *testing.T) {
	cfg := validASConfig()
	cfg.ScaleDownWindow = cfg.TickInterval // exactly one slot
	a := NewAutoscaler(cfg)
	if len(a.ring) != 1 {
		t.Fatalf("ring slots = %d, want 1", len(a.ring))
	}
}

func TestAutoscalerScaleUpImmediate(t *testing.T) {
	a := NewAutoscaler(validASConfig())
	d := a.Observe(0, 4, 1)
	if d.Desired != 4 {
		t.Fatalf("desired = %d, want 4 (target 1, inflight 4)", d.Desired)
	}
}

func TestAutoscalerTargetDivision(t *testing.T) {
	cfg := validASConfig()
	cfg.Target = 2.5
	a := NewAutoscaler(cfg)
	if d := a.Observe(0, 5, 2); d.Desired != 2 {
		t.Errorf("ceil(5/2.5) = %d, want 2", d.Desired)
	}
	if d := a.Observe(0, 6, 2); d.Desired != 3 {
		t.Errorf("ceil(6/2.5) = %d, want 3", d.Desired)
	}
	if d := a.Observe(0, 0, 3); d.Desired != 3 {
		// windowMax still holds 3 from the prior sample in this slot.
		t.Errorf("zero inflight within window: desired = %d, want 3", d.Desired)
	}
}

func TestAutoscalerScaleDownWaitsForWindow(t *testing.T) {
	cfg := validASConfig()
	a := NewAutoscaler(cfg)
	tick := int64(cfg.TickInterval)
	// Burst to 8 at t=0.
	if d := a.Observe(0, 8, 8); d.Desired != 8 {
		t.Fatalf("burst desired = %d, want 8", d.Desired)
	}
	// Ticks with zero inflight: windowed max keeps desired at 8 until the
	// burst sample ages out of the 30-slot window.
	for i := int64(1); i < 30; i++ {
		if d := a.Tick(i*tick, 0, 8); d.Desired != 8 {
			t.Fatalf("tick %d: desired = %d, want 8 (window not drained)", i, d.Desired)
		}
	}
	if d := a.Tick(30*tick, 0, 8); d.Desired != 0 {
		t.Fatalf("after window drained: desired = %d, want 0", d.Desired)
	}
}

func TestAutoscalerObserveNeverScalesDown(t *testing.T) {
	cfg := validASConfig()
	cfg.ScaleDownWindow = cfg.TickInterval
	a := NewAutoscaler(cfg)
	a.Observe(0, 8, 8)
	// Far in the future, window empty: Observe reports the low desired but
	// callers only scale up toward it; the contract tested here is that the
	// tick=false path never applies MaxScaleDownStep flooring.
	cfg2 := validASConfig()
	cfg2.ScaleDownWindow = cfg2.TickInterval
	cfg2.MaxScaleDownStep = 1
	b := NewAutoscaler(cfg2)
	b.Observe(0, 8, 8)
	far := int64(time.Hour)
	if d := b.Observe(far, 0, 8); d.Desired != 0 {
		t.Fatalf("observe floor applied on non-tick path: desired = %d, want 0", d.Desired)
	}
	if d := b.Tick(far+int64(cfg2.TickInterval), 0, 8); d.Desired != 7 {
		t.Fatalf("tick with MaxScaleDownStep=1: desired = %d, want 7", d.Desired)
	}
}

func TestAutoscalerMaxScaleUpStep(t *testing.T) {
	cfg := validASConfig()
	cfg.MaxScaleUpStep = 2
	cfg.PanicFactor = 0.5 // sentinel below 1 after defaults? no: withDefaults only fills 0
	a := NewAutoscaler(cfg)
	if got := a.Config().PanicFactor; got != 0.5 {
		t.Fatalf("explicit panic factor overwritten: %v", got)
	}
	if d := a.Observe(0, 10, 1); d.Desired != 3 {
		t.Fatalf("capped scale-up: desired = %d, want 3 (current 1 + step 2)", d.Desired)
	}
}

func TestAutoscalerPanicMode(t *testing.T) {
	cfg := validASConfig()
	a := NewAutoscaler(cfg)
	tick := int64(cfg.TickInterval)
	// inflight 6 vs current 2: raw 6 >= 2*2 -> panic.
	d := a.Observe(0, 6, 2)
	if !d.Panic || d.Desired != 6 {
		t.Fatalf("burst: got %+v, want panic desired 6", d)
	}
	// During panic, desired never drops below current even if the window
	// would allow it (use a fresh far-future slot to clear the window).
	// Panic window is 6 ticks (12s) from the last trigger.
	if d := a.Tick(2*tick, 0, 6); !d.Panic || d.Desired != 6 {
		t.Fatalf("in panic: got %+v, want panic desired 6", d)
	}
	// After the panic window expires panic clears; the 0-inflight ticks keep
	// the window populated with low samples, but the burst slot (tick 0) is
	// still inside the 30-slot scale-down window, so desired stays 6 via
	// windowMax until that ages out too.
	if d := a.Tick(7*tick, 0, 6); d.Panic {
		t.Fatalf("panic did not exit after panic window: %+v", d)
	}
	if d := a.Tick(31*tick, 0, 6); d.Desired != 0 {
		t.Fatalf("after both windows drained: got %+v, want desired 0", d)
	}
}

func TestAutoscalerPanicPeakSticks(t *testing.T) {
	cfg := validASConfig()
	a := NewAutoscaler(cfg)
	tick := int64(cfg.TickInterval)
	a.Observe(0, 10, 2) // panic, peak 10
	// Demand collapses next slot but panic persists: desired pinned to peak.
	// windowMax still sees 10 anyway; the pin matters versus current.
	if d := a.Tick(tick, 1, 10); !d.Panic || d.Desired != 10 {
		t.Fatalf("panic peak: got %+v, want desired 10", d)
	}
	// A bigger burst during panic refreshes the trigger time and the peak.
	if d := a.Observe(2*tick, 30, 10); !d.Panic || d.Desired != 30 {
		t.Fatalf("re-trigger: got %+v, want desired 30", d)
	}
}

func TestAutoscalerPanicDisabled(t *testing.T) {
	cfg := validASConfig()
	cfg.PanicFactor = 0.5 // < 1 disables panic entirely
	a := NewAutoscaler(cfg)
	if d := a.Observe(0, 100, 1); d.Panic {
		t.Fatalf("panic fired with factor < 1: %+v", d)
	}
}

func TestAutoscalerReset(t *testing.T) {
	a := NewAutoscaler(validASConfig())
	a.Observe(0, 50, 1)
	a.Reset()
	if d := a.Observe(0, 0, 0); d.Desired != 0 || d.Panic {
		t.Fatalf("after reset: got %+v, want zero decision", d)
	}
}

func TestAutoscalerZeroAlloc(t *testing.T) {
	a := NewAutoscaler(validASConfig())
	tick := int64(a.Config().TickInterval)
	allocs := testing.AllocsPerRun(100, func() {
		a.Observe(3*tick, 7, 2)
		a.Tick(4*tick, 1, 7)
	})
	if allocs != 0 {
		t.Fatalf("Observe+Tick allocated %v per run, want 0", allocs)
	}
}

func nan() float64 { return math.NaN() }
func inf() float64 { return math.Inf(1) }
