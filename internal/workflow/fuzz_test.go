package workflow

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// decodeTopology maps arbitrary fuzz bytes onto a bounded DAG candidate:
// byte 0 picks the node count, each following triple encodes one edge
// (from, to, mode/transfer/payload packed in the third byte — including
// out-of-range mode and transfer values so rejection paths stay covered),
// and up to two trailing bytes set a quorum Need on the last node and a
// conditional Select on the first. Returns nil when the input is too small
// or too large to bound the work.
func decodeTopology(data []byte) *DAG {
	if len(data) < 4 || len(data) > 256 {
		return nil
	}
	n := 1 + int(data[0]%8)
	d := &DAG{Name: "fuzz"}
	for i := 0; i < n; i++ {
		d.Nodes = append(d.Nodes, Node{Name: "f" + strconv.Itoa(i), ExecTime: time.Millisecond})
	}
	rest := data[1:]
	for len(rest) >= 3 && len(d.Edges) < 24 {
		from, to, meta := int(rest[0])%n, int(rest[1])%n, rest[2]
		rest = rest[3:]
		d.Edges = append(d.Edges, Edge{
			From:         "f" + strconv.Itoa(from),
			To:           "f" + strconv.Itoa(to),
			Mode:         Mode(meta % 3),
			Transfer:     Transfer((meta / 3) % 3),
			PayloadBytes: int64(meta) << 6,
		})
	}
	if len(rest) >= 1 {
		d.Nodes[n-1].Need = int(rest[0] % 3)
	}
	if len(rest) >= 2 {
		d.Nodes[0].Select = int(rest[1] % 3)
	}
	return d
}

// checkAcyclicSingleRoot re-derives Validate's structural claims with an
// independent Kahn's-algorithm pass: exactly one zero-in-degree node, and
// peeling zero-in-degree nodes consumes the whole graph (acyclic).
func checkAcyclicSingleRoot(t *testing.T, d *DAG) {
	t.Helper()
	indeg := make(map[string]int, len(d.Nodes))
	out := make(map[string][]string, len(d.Nodes))
	for _, n := range d.Nodes {
		indeg[n.Name] = 0
	}
	for _, e := range d.Edges {
		indeg[e.To]++
		out[e.From] = append(out[e.From], e.To)
	}
	var queue []string
	for _, n := range d.Nodes {
		if indeg[n.Name] == 0 {
			queue = append(queue, n.Name)
		}
	}
	if len(queue) != 1 {
		t.Fatalf("accepted DAG has %d roots", len(queue))
	}
	peeled := 0
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		peeled++
		for _, succ := range out[name] {
			if indeg[succ]--; indeg[succ] == 0 {
				queue = append(queue, succ)
			}
		}
	}
	if peeled != len(d.Nodes) {
		t.Fatalf("accepted DAG is cyclic: Kahn peeled %d of %d nodes", peeled, len(d.Nodes))
	}
}

// FuzzWorkflowTopology feeds random byte strings through the DAG decoder:
// rejected topologies must error cleanly (no panic, non-empty message),
// and accepted ones must pass an independent acyclicity check and execute
// three instances to resolution — no deadlock, no conservation violation,
// no leaked events.
func FuzzWorkflowTopology(f *testing.F) {
	seeds := [][]byte{
		{2, 0, 1, 0, 1, 2, 0},                            // chain-3
		{3, 0, 1, 0, 0, 2, 0, 0, 3, 0},                   // fanout-3
		{3, 0, 1, 0, 0, 2, 0, 1, 3, 0, 2, 3, 0, 1},       // diamond, quorum-1 join
		{3, 0, 1, 0, 0, 2, 0, 1, 3, 0, 2, 3, 0, 1, 1},    // diamond, conditional root
		{3, 0, 1, 4, 0, 2, 4, 1, 3, 4, 2, 3, 4},          // diamond, async blobstore edges
		{1, 0, 1, 0, 1, 0, 0},                            // two-node cycle: no root
		{0, 0, 0, 0},                                     // self-loop
		{7, 0, 1, 2, 1, 2, 5, 2, 3, 8, 3, 4, 0, 4, 5, 0}, // invalid modes sprinkled in
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d := decodeTopology(data)
		if d == nil {
			return
		}
		if err := d.Validate(); err != nil {
			if err.Error() == "" {
				t.Fatal("rejection with empty error message")
			}
			return
		}
		checkAcyclicSingleRoot(t, d)

		eng, c := newTestCloud(t, 1, nil)
		deployDAG(t, c, d, time.Millisecond)
		ex, err := New(Config{Cloud: c, DAG: d})
		if err != nil {
			t.Fatalf("validated DAG rejected by executor: %v", err)
		}
		const n = 3
		results, errs := runInstances(t, eng, ex, n, 5*time.Millisecond)
		if len(results) != n {
			t.Fatalf("only %d of %d workflows resolved: executor deadlocked", len(results), n)
		}
		for i, err := range errs {
			if err != nil && !strings.Contains(err.Error(), "failed or skipped") {
				t.Fatalf("instance %d: %v", i, err)
			}
		}
		m := ex.Metrics()
		if m.Workflows != n || m.Completed+m.Failed != n {
			t.Fatalf("accounting: %+v", m)
		}
		for i, b := range m.Barriers {
			if b.Started != b.Completed+b.Dropped+b.Failed {
				t.Fatalf("node %q: started %d != completed %d + dropped %d + failed %d",
					d.Nodes[i].Name, b.Started, b.Completed, b.Dropped, b.Failed)
			}
		}
		if pending := eng.PendingEvents(); pending != 0 {
			t.Fatalf("%d events leaked", pending)
		}
	})
}
