// Package plot renders latency measurements as terminal (ASCII) charts and
// CSV files — the reproduction's equivalent of STeLLAR's plotting
// utilities (§IV): CDFs and latency-versus-parameter curves.
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"github.com/stellar-repro/stellar/internal/stats"
)

// Series is one named sample for plotting.
type Series struct {
	Label  string
	Sample *stats.Sample
}

// markers distinguish series in ASCII charts.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// CDF renders cumulative distribution functions of the series onto w as an
// ASCII chart of the given dimensions. The x axis is logarithmic when the
// samples span more than two decades.
func CDF(w io.Writer, title string, series []Series, width, height int) error {
	if width < 20 {
		width = 64
	}
	if height < 5 {
		height = 16
	}
	var lo, hi time.Duration = math.MaxInt64, 0
	for _, s := range series {
		if s.Sample.Len() == 0 {
			return fmt.Errorf("plot: series %q is empty", s.Label)
		}
		if v := s.Sample.Min(); v < lo {
			lo = v
		}
		if v := s.Sample.Max(); v > hi {
			hi = v
		}
	}
	if lo <= 0 {
		lo = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	logScale := float64(hi)/float64(lo) > 100

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	xOf := func(v time.Duration) int {
		var frac float64
		if logScale {
			frac = (math.Log(float64(v)) - math.Log(float64(lo))) /
				(math.Log(float64(hi)) - math.Log(float64(lo)))
		} else {
			frac = float64(v-lo) / float64(hi-lo)
		}
		x := int(frac * float64(width-1))
		if x < 0 {
			x = 0
		}
		if x >= width {
			x = width - 1
		}
		return x
	}
	for si, s := range series {
		marker := markers[si%len(markers)]
		for _, pt := range s.Sample.CDF() {
			y := height - 1 - int(pt.Frac*float64(height-1))
			grid[y][xOf(pt.Value)] = marker
		}
	}

	fmt.Fprintf(w, "%s\n", title)
	for i, row := range grid {
		frac := 1 - float64(i)/float64(height-1)
		fmt.Fprintf(w, "%5.2f |%s|\n", frac, string(row))
	}
	scale := "linear"
	if logScale {
		scale = "log"
	}
	fmt.Fprintf(w, "      %s\n", strings.Repeat("-", width+2))
	fmt.Fprintf(w, "      %-*s%*s  (%s x-axis)\n", width/2, lo.Round(time.Millisecond),
		width/2, hi.Round(time.Millisecond), scale)
	for si, s := range series {
		sum := s.Sample.Summarize()
		fmt.Fprintf(w, "      %c %s  (median %v, p99 %v, tmr %.1f)\n",
			markers[si%len(markers)], s.Label,
			sum.Median.Round(time.Millisecond), sum.P99.Round(time.Millisecond), sum.TMR)
	}
	return nil
}

// XYPoint is one point of a parameter sweep.
type XYPoint struct {
	X      float64
	Median time.Duration
	P99    time.Duration
}

// XYSeries is a named sweep curve.
type XYSeries struct {
	Label  string
	Points []XYPoint
}

// Sweep renders median (solid rows) and p99 (annotated) latencies against a
// swept parameter as an aligned text table, one row per X value — the
// textual equivalent of the paper's Fig. 6a/7a log-log plots.
func Sweep(w io.Writer, title, xName string, series []XYSeries) error {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-14s", xName)
	for _, s := range series {
		fmt.Fprintf(w, " | %-26s", s.Label+" med / p99")
	}
	fmt.Fprintln(w)
	// Collect the union of X values in order.
	xs := map[float64]bool{}
	for _, s := range series {
		for _, pt := range s.Points {
			xs[pt.X] = true
		}
	}
	ordered := make([]float64, 0, len(xs))
	for x := range xs {
		ordered = append(ordered, x)
	}
	sort.Float64s(ordered)
	for _, x := range ordered {
		fmt.Fprintf(w, "%-14s", formatX(x))
		for _, s := range series {
			var cell string
			for _, pt := range s.Points {
				if pt.X == x {
					cell = fmt.Sprintf("%v / %v",
						pt.Median.Round(time.Millisecond), pt.P99.Round(time.Millisecond))
					break
				}
			}
			fmt.Fprintf(w, " | %-26s", cell)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// formatX renders a parameter value compactly (byte sizes get units).
func formatX(x float64) string {
	switch {
	case x >= 1<<30:
		return fmt.Sprintf("%.0fGB", x/(1<<30))
	case x >= 1<<20:
		return fmt.Sprintf("%.0fMB", x/(1<<20))
	case x >= 1<<10:
		return fmt.Sprintf("%.0fKB", x/(1<<10))
	default:
		return fmt.Sprintf("%.0f", x)
	}
}

// CSV writes one row per (series, CDF point): label,value_ns,frac. The
// output loads directly into external plotting tools.
func CSV(w io.Writer, series []Series) error {
	if _, err := fmt.Fprintln(w, "label,value_ns,frac"); err != nil {
		return err
	}
	for _, s := range series {
		for _, pt := range s.Sample.CDF() {
			if _, err := fmt.Fprintf(w, "%s,%d,%.6f\n", s.Label, pt.Value.Nanoseconds(), pt.Frac); err != nil {
				return err
			}
		}
	}
	return nil
}

// SummaryTable renders per-series summaries as an aligned text table.
func SummaryTable(w io.Writer, series []Series) {
	fmt.Fprintf(w, "%-32s %10s %10s %10s %8s %8s\n", "series", "median", "p95", "p99", "max", "tmr")
	for _, s := range series {
		sum := s.Sample.Summarize()
		fmt.Fprintf(w, "%-32s %10v %10v %10v %8v %8.1f\n", s.Label,
			sum.Median.Round(time.Millisecond), sum.P95.Round(time.Millisecond),
			sum.P99.Round(time.Millisecond), sum.Max.Round(100*time.Millisecond), sum.TMR)
	}
}
