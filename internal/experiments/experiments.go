// Package experiments reproduces every table and figure of the paper's
// evaluation (§VI) using STeLLAR over the simulated provider clouds. Each
// figure has a runner returning a Figure with its measured series plus the
// paper's reference values, so reports can show paper-vs-measured side by
// side (recorded in EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"time"

	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/core"
	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/dist"
	"github.com/stellar-repro/stellar/internal/providers"
	"github.com/stellar-repro/stellar/internal/runner"
	"github.com/stellar-repro/stellar/internal/stats"
)

// Options scales experiments: full paper scale (3000 samples, 100 replicas)
// by default, reducible for benches and CI.
type Options struct {
	// Seed roots all randomness. Every independent measurement (one
	// provider/configuration series) draws from its own splittable shard
	// stream derived from Seed, so results are byte-identical at any
	// Workers setting.
	Seed int64
	// Samples per configuration (paper: 3000).
	Samples int
	// Replicas for cold-start studies (paper: >100).
	Replicas int
	// Workers bounds how many independent series run concurrently, each on
	// its own isolated DES engine. Zero means GOMAXPROCS; 1 is fully
	// serial. The setting changes wall-clock time only, never results.
	Workers int
	// CSVDir, when set, makes Report write each figure's series as
	// <CSVDir>/<figureID>.csv for external plotting.
	CSVDir string
	// Engine selects the invocation execution form (proc, callback, or
	// auto). The forms are byte-identical (see TestEngineFormsEquivalent);
	// the knob changes wall-clock time only.
	Engine cloud.EngineMode
}

// Defaults returns paper-scale options.
func Defaults() Options {
	return Options{Seed: 1, Samples: 3000, Replicas: 100}
}

// Quick returns reduced options for fast benches and tests.
func Quick() Options {
	return Options{Seed: 1, Samples: 600, Replicas: 40}
}

func (o Options) normalized() Options {
	d := Defaults()
	if o.Samples <= 0 {
		o.Samples = d.Samples
	}
	if o.Replicas <= 0 {
		o.Replicas = d.Replicas
	}
	return o
}

// Ref is a paper-reported reference value for one series.
type Ref struct {
	// Median and P99 are the paper's values (zero when not reported).
	Median time.Duration
	P99    time.Duration
}

// Series is one measured curve/CDF of a figure.
type Series struct {
	// Label identifies the series ("aws short-IAT burst=100").
	Label string
	// X is the series' parameter value when the figure sweeps one
	// (payload bytes, burst size); zero otherwise.
	X float64
	// Latencies holds the measurement.
	Latencies *stats.Sample
	// Paper holds the paper's reference values when known.
	Paper Ref
	// Colds and Errors count per-run outcomes.
	Colds  int
	Errors int
}

// Summary of the series' measurement.
func (s Series) Summary() stats.Summary { return s.Latencies.Summarize() }

// Figure is a reproduced table or figure.
type Figure struct {
	ID     string
	Title  string
	Series []Series
	Notes  []string
}

// Long and short inter-arrival times from the paper's methodology (§V).
const (
	shortIAT = 3 * time.Second
	// longIAT makes providers shut idle instances down with high
	// likelihood. AWS reaps deterministically at 10 minutes, so a small
	// headroom suffices there.
	longIAT    = 15 * time.Minute
	longIATAWS = 10*time.Minute + 30*time.Second
)

// longIATFor returns the cold-study function IAT for a provider.
func longIATFor(provider string) time.Duration {
	if provider == "aws" {
		return longIATAWS
	}
	return longIAT
}

// env is one isolated measurement environment: a fresh engine, one
// simulated cloud, a deployer plugin, and a STeLLAR client.
type env struct {
	eng      *des.Engine
	cloud    *cloud.Cloud
	provider *core.SimProvider
	client   *core.Client
	deployer *core.Deployer
}

// newEnv builds an environment for a provider profile.
func newEnv(providerName string, seed int64) (*env, error) {
	cfg, err := providers.Get(providerName)
	if err != nil {
		return nil, err
	}
	return newEnvWithConfig(cfg, seed)
}

// newEnvWithConfig builds an environment from an explicit profile (used by
// the ablation benches).
func newEnvWithConfig(cfg cloud.Config, seed int64) (*env, error) {
	eng := des.NewEngine()
	streams := dist.NewStreams(seed)
	cl, err := cloud.New(eng, cfg, streams)
	if err != nil {
		eng.Close()
		return nil, err
	}
	sp := &core.SimProvider{Cloud: cl, BaseZipBytes: providers.BaseZipBytes()}
	client := &core.Client{
		Transport: core.NewSimTransport(eng, cl),
		RNG:       streams.Stream("stellar-client"),
	}
	return &env{
		eng:      eng,
		cloud:    cl,
		provider: sp,
		client:   client,
		deployer: core.NewDeployer(sp),
	}, nil
}

func (e *env) close() { e.eng.Close() }

// run deploys a static config into the environment and executes one client
// run against all produced endpoints.
func (e *env) run(sc core.StaticConfig, rc core.RuntimeConfig) (*core.RunResult, error) {
	sc.Provider = e.cloud.Config().Name
	eps, err := e.deployer.Deploy(&sc)
	if err != nil {
		return nil, err
	}
	return e.client.Run(eps.Endpoints, rc)
}

// measure creates an isolated environment, runs one configuration under
// the chosen execution form, and returns the result.
func measure(providerName string, seed int64, engine cloud.EngineMode, sc core.StaticConfig, rc core.RuntimeConfig) (*core.RunResult, error) {
	e, err := newEnv(providerName, seed)
	if err != nil {
		return nil, err
	}
	defer e.close()
	e.cloud.SetEngineMode(engine)
	return e.run(sc, rc)
}

// pool returns the worker pool all of the options' shards run on.
func (o Options) pool() runner.Pool {
	return runner.Pool{Workers: o.Workers, Seed: o.Seed}
}

// mapSeries runs n independent series measurements on the options' worker
// pool and collects them in index order. Each measurement receives its
// shard index and private seed; everything random inside it must derive
// from that seed so Workers=1 and Workers=N stay byte-identical.
func mapSeries(opts Options, n int, fn func(i int, seed int64) (Series, error)) ([]Series, error) {
	return runner.Map(opts.pool(), n, func(sh runner.Shard) (Series, error) {
		return fn(sh.Index, sh.Seed)
	})
}

// seriesFrom converts a run result into a Series.
func seriesFrom(label string, x float64, res *core.RunResult, paper Ref) Series {
	return Series{
		Label:     label,
		X:         x,
		Latencies: res.Latencies,
		Paper:     paper,
		Colds:     res.Colds,
		Errors:    res.Errors,
	}
}

// transferSeriesFrom is seriesFrom over the instrumented transfer times.
func transferSeriesFrom(label string, x float64, res *core.RunResult, paper Ref) (Series, error) {
	if res.Transfers.Len() == 0 {
		return Series{}, fmt.Errorf("experiments: %s produced no instrumented transfers", label)
	}
	return Series{
		Label:     label,
		X:         x,
		Latencies: res.Transfers,
		Paper:     paper,
		Colds:     res.Colds,
		Errors:    res.Errors,
	}, nil
}

// pythonFn is the standard single-function static config (paper §V: Python
// ZIP functions for everything except image-size and transfer studies).
func pythonFn(name string, replicas int) core.StaticConfig {
	return core.StaticConfig{Functions: []core.FunctionConfig{{
		Name:     name,
		Runtime:  string(cloud.RuntimePython),
		Method:   string(cloud.DeployZIP),
		Replicas: replicas,
	}}}
}

// AllProviders lists the studied providers in the paper's order.
var AllProviders = []string{"aws", "google", "azure"}
