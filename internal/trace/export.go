package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// traceEvent is one Chrome trace_event entry. Field order is fixed by the
// struct, and args maps marshal with sorted keys, so output is byte-stable
// for identical inputs.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the trace_event JSON object format, which both
// chrome://tracing and Perfetto load directly.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTraceEvents exports traces as Chrome trace_event JSON. Each shard
// becomes a process, each request a thread-named track carrying one
// request-level slice with its stage spans nested inside it; cold-start
// detail spans nest inside the queue-wait span on the same track.
func WriteTraceEvents(w io.Writer, recs []RequestRecord) error {
	f := traceFile{DisplayTimeUnit: "ms", TraceEvents: make([]traceEvent, 0, 2*len(recs)+8)}
	seenShard := make(map[int]bool)
	for i := range recs {
		r := &recs[i]
		pid := r.Shard + 1
		if !seenShard[pid] {
			seenShard[pid] = true
			f.TraceEvents = append(f.TraceEvents, traceEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]any{"name": fmt.Sprintf("shard %d", r.Shard)},
			})
		}
		label := fmt.Sprintf("req %d %s", r.ID, r.Fn)
		if r.Cold {
			label += " (cold)"
		}
		if r.Slow {
			label += " [slow]"
		}
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: r.ID,
			Args: map[string]any{"name": label},
		})
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: r.Fn, Ph: "X", Ts: microsNS(r.StartNS), Dur: microsNS(r.EndNS - r.StartNS),
			Pid: pid, Tid: r.ID, Cat: "request",
			Args: map[string]any{"attempts": r.Attempts, "cold": r.Cold, "slow": r.Slow},
		})
		for _, sp := range r.Spans {
			ev := traceEvent{
				Name: sp.Stage, Ph: "X", Ts: microsNS(sp.StartNS), Dur: microsNS(sp.DurNS),
				Pid: pid, Tid: r.ID, Cat: "stage",
			}
			if sp.Detail {
				ev.Cat = "cold"
			}
			if sp.Attempt > 0 {
				ev.Args = map[string]any{"attempt": sp.Attempt}
			}
			f.TraceEvents = append(f.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}
