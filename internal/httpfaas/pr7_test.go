package httpfaas

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/core"
)

func TestTimeScaleValidation(t *testing.T) {
	cases := []struct {
		name  string
		scale float64
		ok    bool
	}{
		{"one", 1, true},
		{"compressed", 1000, true},
		{"fractional", 0.5, true},
		{"zero", 0, false},
		{"negative", -3, false},
		{"nan", math.NaN(), false},
		{"posinf", math.Inf(1), false},
		{"neginf", math.Inf(-1), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, err := NewServer(fastConfig(), 1, tc.scale)
			if tc.ok {
				if err != nil {
					t.Fatalf("NewServer(scale=%v) = %v, want ok", tc.scale, err)
				}
				if srv.TimeScale() != tc.scale {
					t.Fatalf("TimeScale() = %v, want %v", srv.TimeScale(), tc.scale)
				}
				return
			}
			if err == nil {
				t.Fatalf("NewServer(scale=%v) succeeded, want error", tc.scale)
			}
			if !strings.Contains(err.Error(), "time scale") {
				t.Fatalf("error %q does not mention the time scale", err)
			}
		})
	}
}

// TestShutdownDrainsInflight is the graceful-shutdown regression: a stop
// issued while a burst is mid-flight must let every accepted request finish
// with a real response instead of dropping the connections.
func TestShutdownDrainsInflight(t *testing.T) {
	srv, err := NewServer(fastConfig(), 1, 1) // real time: requests stay in flight
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	eps, err := srv.Deploy(core.FunctionConfig{Name: "drain", Runtime: "go1.x", Method: "zip"})
	if err != nil {
		t.Fatal(err)
	}

	const n = 12
	statuses := make([]int, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(eps[0].URL + "?exec_ms=500")
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			_, _ = io.Copy(io.Discard, resp.Body)
			statuses[i] = resp.StatusCode
		}(i)
	}

	// Let every request reach its handler (execution alone takes 500ms of
	// wall time at scale 1), then stop mid-burst.
	time.Sleep(150 * time.Millisecond)
	if err := srv.Shutdown(30 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Errorf("request %d dropped during shutdown: %v", i, errs[i])
		} else if statuses[i] != http.StatusOK {
			t.Errorf("request %d: status %d, want 200", i, statuses[i])
		}
	}

	// The listener must be gone: new work is refused, not silently queued.
	if _, err := http.Get(eps[0].URL); err == nil {
		t.Error("request after Shutdown succeeded, want connection error")
	}
	srv.Stop() // idempotent after Shutdown
}

// TestAppendReplyMatchesEncodingJSON pins the manual encoder to the stock
// one byte-for-byte on every shape it claims to handle, and checks it
// refuses the shapes it cannot.
func TestAppendReplyMatchesEncodingJSON(t *testing.T) {
	replies := []InvokeReply{
		{},
		{Function: "hello", Cold: true, InstanceID: 7, QueueWaitNS: 1234, SimLatencyNS: 987654321},
		{Function: "f-0_9.x", InstanceID: -1, QueueWaitNS: -5, SimLatencyNS: 0},
		{Function: "chain2", Cold: false, InstanceID: 2147483647, QueueWaitNS: 9e15, SimLatencyNS: -9e15},
	}
	for _, r := range replies {
		got, ok := appendReply(nil, &r)
		if !ok {
			t.Fatalf("appendReply refused plain reply %+v", r)
		}
		var want bytes.Buffer
		if err := json.NewEncoder(&want).Encode(r); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Errorf("encoding mismatch for %+v:\n got %q\nwant %q", r, got, want.Bytes())
		}
	}

	// Shapes the fast encoder must punt to encoding/json.
	fallbacks := []InvokeReply{
		{Function: `quo"te`},
		{Function: "back\\slash"},
		{Function: "html<&>"},
		{Function: "ünïcode"},
		{Function: "ctl\x01"},
		{Function: "ts", Timestamps: map[string]int64{"f.recv": 1, "f.send": 2}},
	}
	for _, r := range fallbacks {
		if _, ok := appendReply(nil, &r); ok {
			t.Errorf("appendReply accepted %+v, want fallback to encoding/json", r)
		}
	}
}

func TestParseInvokeQuery(t *testing.T) {
	cases := []struct {
		query   string
		bad     string
		exec    time.Duration
		payload int64
	}{
		{query: "exec_ms=5", exec: 5 * time.Millisecond},
		{query: "payload=1024", payload: 1024},
		{query: "exec_ms=3&payload=10", exec: 3 * time.Millisecond, payload: 10},
		{query: "payload=10&exec_ms=3&other=zzz", exec: 3 * time.Millisecond, payload: 10},
		{query: "exec_ms=", exec: 0}, // empty value ignored, like url.Values.Get
		{query: "exec_ms", exec: 0},  // key without '=' ignored
		{query: "unknown=42", exec: 0},
		{query: "exec_ms=-1", bad: "exec_ms"},
		{query: "exec_ms=soon", bad: "exec_ms"},
		{query: "exec_ms=1e3", bad: "exec_ms"},
		{query: "payload=-5", bad: "payload"},
		{query: "payload=much", bad: "payload"},
		{query: "payload=99999999999999999999", bad: "payload"}, // overflow-length
	}
	for _, tc := range cases {
		var req cloud.Request
		bad := parseInvokeQuery(tc.query, &req)
		if bad != tc.bad {
			t.Errorf("%q: bad = %q, want %q", tc.query, bad, tc.bad)
			continue
		}
		if tc.bad != "" {
			continue
		}
		if req.ExecTime != tc.exec || req.ChainPayloadBytes != tc.payload {
			t.Errorf("%q: parsed exec=%v payload=%d, want exec=%v payload=%d",
				tc.query, req.ExecTime, req.ChainPayloadBytes, tc.exec, tc.payload)
		}
	}
}

// TestQueryBehaviorOverHTTP pins the end-to-end effect of the manual query
// parser: a request with parameters still round-trips and affects the sim.
func TestQueryBehaviorOverHTTP(t *testing.T) {
	srv := startServer(t)
	eps, err := srv.Deploy(core.FunctionConfig{Name: "q", Runtime: "go1.x", Method: "zip"})
	if err != nil {
		t.Fatal(err)
	}
	get := func(q string) InvokeReply {
		t.Helper()
		resp, err := http.Get(eps[0].URL + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("%s: status %s: %s", q, resp.Status, body)
		}
		var reply InvokeReply
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			t.Fatal(err)
		}
		return reply
	}
	warm := get("") // absorb the cold start
	if !warm.Cold {
		t.Fatal("first call should be cold")
	}
	plain := get("")
	slow := get("?exec_ms=2000") // 2 virtual seconds
	if slow.SimLatencyNS-plain.SimLatencyNS < int64(time.Second) {
		t.Errorf("exec_ms=2000 added %v over baseline %v, want ~2s of virtual latency",
			time.Duration(slow.SimLatencyNS-plain.SimLatencyNS), time.Duration(plain.SimLatencyNS))
	}
}

// BenchmarkHTTPInvoke measures the full server round trip — real socket,
// engine injection, callback invoke, pooled encode — over one keep-alive
// connection at high time compression.
func BenchmarkHTTPInvoke(b *testing.B) {
	srv, err := NewServer(fastConfig(), 1, 100000)
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer srv.Stop()
	eps, err := srv.Deploy(core.FunctionConfig{Name: "bench", Runtime: "go1.x", Method: "zip"})
	if err != nil {
		b.Fatal(err)
	}
	client := &http.Client{}
	req, err := http.NewRequest(http.MethodGet, eps[0].URL, nil)
	if err != nil {
		b.Fatal(err)
	}
	do := func() error {
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}
	if err := do(); err != nil { // cold start outside the timed region
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := do(); err != nil {
			b.Fatal(err)
		}
	}
}
