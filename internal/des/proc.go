package des

import "fmt"

// Proc is the handle a simulated process uses to interact with virtual time.
// A process is a goroutine scheduled cooperatively by the engine: exactly one
// process (or event callback) executes at a time, so processes may freely
// mutate shared simulation state between blocking calls.
//
// Process records, their wake channels, and their goroutines are pooled:
// when a process function returns, the goroutine parks and the record goes
// back to the engine's pool for the next Spawn. All pool bookkeeping happens
// while the exiting process still holds the control token, and the token
// handoff itself (a channel operation) orders it before any reuse, so the
// pool needs no locking.
type Proc struct {
	eng    *Engine
	name   string
	fn     func(p *Proc)
	wake   chan struct{}
	killed bool
	done   bool
}

// Spawn starts fn as a new process at the current virtual time, reusing a
// pooled goroutine when one is available. It must be called from simulation
// context (another process, an event callback, or before Run). The process
// begins executing when the engine reaches the spawning instant.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	var p *Proc
	if n := len(e.pool); n > 0 {
		p = e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
		p.name, p.fn = name, fn
		p.killed, p.done = false, false
	} else {
		p = &Proc{eng: e, name: name, fn: fn, wake: make(chan struct{})}
		go p.run()
	}
	e.procs[p] = struct{}{}
	e.scheduleProc(e.now, p)
	return p
}

// run is the root of a pooled process goroutine. Each loop iteration serves
// one Spawn assignment: wait for the first resume, execute the process
// function, return the record to the pool, and hand the control token back
// to the engine's run loop. A wake-up with no assigned function is the
// engine shutting the pool down.
func (p *Proc) run() {
	e := p.eng
	// reassigned is set when the exit handoff popped this record's own
	// first-resume event (a callback it fired re-Spawned the record): the
	// goroutine already holds the control token and must not wait for a
	// wake-up that nobody else will send.
	reassigned := false
	for {
		if !reassigned {
			<-p.wake
		}
		reassigned = false
		if p.fn == nil {
			return // Close drained the pool
		}
		p.exec()
		p.fn = nil
		if e.stopped {
			// Killed during Close: acknowledge and exit for good.
			e.mainWake <- struct{}{}
			return
		}
		e.pool = append(e.pool, p)
		// Exit handoff: fire pending callbacks, transfer to the next
		// resumed process, or return the token to Run at the horizon. In
		// real-time mode the run loop owns pacing, so always return there.
		if e.realTime {
			e.mainWake <- struct{}{}
		} else {
			reassigned = e.dispatchOnExit(p)
		}
	}
}

// exec runs one assignment, unwinding kill panics and annotating real ones.
func (p *Proc) exec() {
	defer func() {
		p.done = true
		delete(p.eng.procs, p)
		if r := recover(); r != nil && r != errKilled {
			// Re-panic real bugs with process context attached.
			panic(fmt.Sprintf("des: process %q panicked: %v", p.name, r))
		}
	}()
	if p.killed {
		panic(errKilled)
	}
	p.fn(p)
}

// park blocks the process until its next resume event fires. The caller must
// have arranged for a future resume (a scheduled event, a resource grant, or
// a signal registration) before calling park.
//
// In virtual-time mode the parking goroutine keeps the control token and
// drives the dispatch loop itself: if the next due event is this process's
// own resume, park returns without any channel operation — the dominant
// Sleep path costs one heap push and one pop.
func (p *Proc) park() {
	e := p.eng
	if e.realTime {
		e.mainWake <- struct{}{}
	} else if e.dispatchFrom(p) {
		if p.killed {
			panic(errKilled)
		}
		return
	}
	<-p.wake
	if p.killed {
		panic(errKilled)
	}
}

// kill unwinds a parked process. Called only from Engine.Close, which holds
// the control token; the killed goroutine acknowledges via mainWake before
// exiting, so Close never races the unwind.
func (p *Proc) kill() {
	if p.done {
		return
	}
	p.killed = true
	p.wake <- struct{}{}
	<-p.eng.mainWake
}

// Engine returns the engine that owns this process.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Sleep suspends the process for d of virtual time. Negative durations are
// treated as zero (the process still yields to the scheduler).
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.eng.scheduleProc(p.eng.now+d, p)
	p.park()
}

// Yield reschedules the process at the current instant, letting other work
// scheduled for this time run first.
func (p *Proc) Yield() { p.Sleep(0) }
