package cloud

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/dist"
	"github.com/stellar-repro/stellar/internal/econ"
)

// econConfig is testConfig with the autoscaler control plane enabled.
func econConfig(suspend bool) Config {
	cfg := testConfig()
	cfg.Autoscaler = &econ.AutoscalerConfig{
		Target:          1,
		TickInterval:    500 * time.Millisecond,
		ScaleDownWindow: 2 * time.Second,
		Suspend:         suspend,
	}
	cfg.ResumeDelay = dist.Constant(30 * time.Millisecond)
	return cfg
}

// runPoisson drives n invocations of each named function at a fixed spacing
// and returns per-function success/error counts.
func runOpenLoop(eng *des.Engine, c *Cloud, fns []string, n int, gap time.Duration) (oks, errs []int) {
	oks = make([]int, len(fns))
	errs = make([]int, len(fns))
	for fi, name := range fns {
		fi, name := fi, name
		for i := 0; i < n; i++ {
			at := time.Duration(i) * gap
			eng.At(at, func() {
				c.InvokeAsync(&Request{Fn: name}, func(_ *Response, err error) {
					if err != nil {
						errs[fi]++
					} else {
						oks[fi]++
					}
				})
			})
		}
	}
	eng.Run(0)
	return oks, errs
}

// TestBillingConservation pins the conservation invariant: every GB-ms and
// every request lands in exactly one tenant meter and the fleet meter, so
// the per-tenant sum equals the fleet total to float-ordering precision.
func TestBillingConservation(t *testing.T) {
	eng, c := newTestCloud(t, econConfig(true))
	names := []string{"a", "b", "c"}
	for i, name := range names {
		deploy(t, c, FunctionSpec{Name: name, ExecTime: time.Duration(i+1) * 10 * time.Millisecond})
	}
	runOpenLoop(eng, c, names, 40, 150*time.Millisecond)

	total := c.Usage()
	var sum econ.Usage
	for _, name := range names {
		u, ok := c.FunctionUsage(name)
		if !ok {
			t.Fatalf("no usage for %s", name)
		}
		sum.Add(u)
	}
	relEq := func(a, b float64) bool {
		if a == b {
			return true
		}
		return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
	}
	if !relEq(sum.BusyGBms, total.BusyGBms) || !relEq(sum.IdleGBms, total.IdleGBms) ||
		!relEq(sum.SuspendedGBms, total.SuspendedGBms) || sum.Requests != total.Requests {
		t.Fatalf("conservation broken:\n tenants sum %+v\n fleet total %+v", sum, total)
	}
	if total.BusyGBms <= 0 || total.Requests == 0 {
		t.Fatalf("no usage accumulated: %+v", total)
	}
	// A plan prices the same usage whether summed per tenant or fleet-wide.
	plan, err := econ.Plan("provisioned")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := plan.Price(sum).Total, plan.Price(total).Total; !relEq(got, want) {
		t.Fatalf("priced totals diverge: %v vs %v", got, want)
	}
}

// TestSuspendResumeChurn is the never-lose-an-instance invariant: across a
// bursty on/off workload that repeatedly suspends and resumes, every
// suspended instance is either resumed or still parked, worker occupancy
// matches the live set, and the simulation quiesces with no pending events.
func TestSuspendResumeChurn(t *testing.T) {
	eng, c := newTestCloud(t, econConfig(true))
	deploy(t, c, FunctionSpec{Name: "churn", ExecTime: 5 * time.Millisecond})

	var errs int
	// Five bursts separated by gaps longer than the scale-down window, so
	// each gap drains the fleet to suspended and each burst resumes it.
	for burst := 0; burst < 5; burst++ {
		base := time.Duration(burst) * 10 * time.Second
		for i := 0; i < 12; i++ {
			at := base + time.Duration(i)*20*time.Millisecond
			eng.At(at, func() {
				c.InvokeAsync(&Request{Fn: "churn"}, func(_ *Response, err error) {
					if err != nil {
						errs++
					}
				})
			})
		}
	}
	eng.Run(0)

	if errs != 0 {
		t.Fatalf("%d invocations failed", errs)
	}
	if n := eng.PendingEvents(); n != 0 {
		t.Fatalf("%d events still pending after quiesce", n)
	}
	m := c.Metrics()
	if m.Suspends == 0 || m.Resumes == 0 {
		t.Fatalf("churn exercised no suspend/resume: %+v", m)
	}
	susp := c.SuspendedInstances("churn")
	if int(m.Suspends)-int(m.Resumes) != susp {
		t.Fatalf("instance leak: %d suspends - %d resumes != %d parked",
			m.Suspends, m.Resumes, susp)
	}
	live := c.LiveInstances("churn")
	occupancy := 0
	for _, w := range c.Workers() {
		occupancy += w.Instances
	}
	if occupancy != live {
		t.Fatalf("worker occupancy %d != live instances %d", occupancy, live)
	}
	// Resumed instances serve warm: far fewer cold serves than bursts×size.
	if m.Resumes > 0 && m.ColdServed >= m.WarmServed {
		t.Fatalf("resume did not preserve warmth: cold %d, warm %d", m.ColdServed, m.WarmServed)
	}
	u := c.Usage()
	if u.SuspendedGBms <= 0 {
		t.Fatalf("suspended time never billed: %+v", u)
	}
}

// TestResumeFasterThanCold pins the lifecycle ordering that motivates the
// suspended state: a resume costs ResumeDelay, far below the cold-boot
// pipeline, and the resumed instance serves warm.
func TestResumeFasterThanCold(t *testing.T) {
	eng, c := newTestCloud(t, econConfig(true))
	deploy(t, c, FunctionSpec{Name: "f", ExecTime: 5 * time.Millisecond})

	cold := invokeAt(eng, c, 0, &Request{Fn: "f"})
	// Well past the scale-down window: the instance is suspended by then.
	resumed := invokeAt(eng, c, 20*time.Second, &Request{Fn: "f"})
	eng.Run(0)

	if cold.err != nil || resumed.err != nil {
		t.Fatalf("errors: %v, %v", cold.err, resumed.err)
	}
	if !cold.resp.Cold {
		t.Fatal("first invocation not cold")
	}
	if resumed.resp.Cold {
		t.Fatal("post-suspend invocation served cold: resume lost instance state")
	}
	m := c.Metrics()
	if m.Suspends == 0 || m.Resumes == 0 {
		t.Fatalf("suspend/resume not exercised: %+v", m)
	}
	if resumed.lat >= cold.lat {
		t.Fatalf("resume latency %v not below cold latency %v", resumed.lat, cold.lat)
	}
}

// TestAutoscalerEvict covers Suspend=false: scale-down evicts outright, so
// a revival after idleness is a full cold start and nothing stays parked.
func TestAutoscalerEvict(t *testing.T) {
	eng, c := newTestCloud(t, econConfig(false))
	deploy(t, c, FunctionSpec{Name: "f", ExecTime: 5 * time.Millisecond})

	first := invokeAt(eng, c, 0, &Request{Fn: "f"})
	second := invokeAt(eng, c, 20*time.Second, &Request{Fn: "f"})
	eng.Run(0)

	if first.err != nil || second.err != nil {
		t.Fatalf("errors: %v, %v", first.err, second.err)
	}
	if !second.resp.Cold {
		t.Fatal("eviction mode kept the instance alive past the window")
	}
	m := c.Metrics()
	if m.Suspends != 0 || m.Resumes != 0 {
		t.Fatalf("eviction mode suspended: %+v", m)
	}
	if m.Expirations == 0 {
		t.Fatal("scale-down never evicted")
	}
	if c.SuspendedInstances("f") != 0 {
		t.Fatal("suspended pool non-empty in eviction mode")
	}
}

// TestConcurrencyLimit pins per-tenant admission control in both execution
// forms: with MaxConcurrent=2, a 5-wide simultaneous burst admits 2 and
// rejects 3 with ErrConcurrencyLimit.
func TestConcurrencyLimit(t *testing.T) {
	for _, mode := range []EngineMode{EngineProc, EngineCallback} {
		t.Run(mode.String(), func(t *testing.T) {
			eng, c := newTestCloud(t, testConfig())
			c.SetEngineMode(mode)
			deploy(t, c, FunctionSpec{Name: "f", ExecTime: 50 * time.Millisecond, MaxConcurrent: 2})
			var oks, rejects, others int
			for i := 0; i < 5; i++ {
				eng.At(0, func() {
					c.InvokeAsync(&Request{Fn: "f"}, func(_ *Response, err error) {
						switch {
						case err == nil:
							oks++
						case errors.Is(err, ErrConcurrencyLimit):
							rejects++
						default:
							others++
						}
					})
				})
			}
			eng.Run(0)
			if oks != 2 || rejects != 3 || others != 0 {
				t.Fatalf("oks=%d rejects=%d others=%d, want 2/3/0", oks, rejects, others)
			}
			m := c.Metrics()
			if m.ConcurrencyRejects != 3 {
				t.Fatalf("ConcurrencyRejects = %d, want 3", m.ConcurrencyRejects)
			}
			tm, _ := c.FunctionMetrics("f")
			if tm.Errors != 3 {
				t.Fatalf("tenant errors = %d, want 3", tm.Errors)
			}
			u, _ := c.FunctionUsage("f")
			if u.Requests != 5 {
				t.Fatalf("metered requests = %d, want 5 (rejects still billed a request)", u.Requests)
			}
		})
	}
}

// econFingerprint summarizes a run for byte-identity comparisons.
func econFingerprint(c *Cloud, lats []time.Duration) string {
	m := c.Metrics()
	u := c.Usage()
	s := fmt.Sprintf("inv=%d cold=%d warm=%d spawns=%d susp=%d res=%d rej=%d gbs=%.9f busy=%.6f idle=%.6f sus=%.6f req=%d",
		m.Invocations, m.ColdServed, m.WarmServed, m.Spawns, m.Suspends, m.Resumes,
		m.ConcurrencyRejects, m.BilledGBSeconds, u.BusyGBms, u.IdleGBms, u.SuspendedGBms, u.Requests)
	for _, l := range lats {
		s += fmt.Sprintf(" %d", l)
	}
	return s
}

// TestEconFormsEquivalent extends the proc/callback equivalence contract to
// the autoscaler control plane: the same bursty workload under EngineProc
// and EngineCallback produces identical latencies, counters, and usage.
func TestEconFormsEquivalent(t *testing.T) {
	run := func(mode EngineMode) string {
		eng := des.NewEngine()
		defer eng.Close()
		c, err := New(eng, econConfig(true), dist.NewStreams(7))
		if err != nil {
			t.Fatal(err)
		}
		c.SetEngineMode(mode)
		if err := c.Deploy(FunctionSpec{
			Name: "f", Runtime: RuntimePython, Method: DeployZIP,
			ExecTime: 8 * time.Millisecond, MaxConcurrent: 24,
		}); err != nil {
			t.Fatal(err)
		}
		var lats []time.Duration
		for burst := 0; burst < 3; burst++ {
			base := time.Duration(burst) * 8 * time.Second
			for i := 0; i < 10; i++ {
				at := base + time.Duration(i)*5*time.Millisecond
				eng.At(at, func() {
					start := eng.Now()
					c.InvokeAsync(&Request{Fn: "f"}, func(_ *Response, err error) {
						if err == nil {
							lats = append(lats, eng.Now()-start)
						} else {
							lats = append(lats, -1)
						}
					})
				})
			}
		}
		eng.Run(0)
		return econFingerprint(c, lats)
	}
	proc, callback := run(EngineProc), run(EngineCallback)
	if proc != callback {
		t.Fatalf("forms diverge under autoscaler:\n proc:     %s\n callback: %s", proc, callback)
	}
}

// TestBillingPassiveByteIdentical pins the golden-safety contract for the
// billing meter: enabling Config.Billing (with no autoscaler) changes no
// schedule, latency, or counter — metering is pure arithmetic on
// transitions the simulator already performs.
func TestBillingPassiveByteIdentical(t *testing.T) {
	run := func(withBilling bool) string {
		cfg := testConfig()
		if withBilling {
			plan, err := econ.Plan("ondemand")
			if err != nil {
				t.Fatal(err)
			}
			cfg.Billing = &plan
		}
		eng := des.NewEngine()
		defer eng.Close()
		c, err := New(eng, cfg, dist.NewStreams(3))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Deploy(FunctionSpec{
			Name: "f", Runtime: RuntimePython, Method: DeployZIP,
			ExecTime: 10 * time.Millisecond,
		}); err != nil {
			t.Fatal(err)
		}
		var lats []time.Duration
		for i := 0; i < 30; i++ {
			at := time.Duration(i) * 120 * time.Millisecond
			eng.At(at, func() {
				start := eng.Now()
				c.InvokeAsync(&Request{Fn: "f"}, func(_ *Response, err error) {
					if err == nil {
						lats = append(lats, eng.Now()-start)
					}
				})
			})
		}
		eng.Run(0)
		return econFingerprint(c, lats)
	}
	if off, on := run(false), run(true); off != on {
		t.Fatalf("billing config perturbed the schedule:\n off: %s\n on:  %s", off, on)
	}
}

// TestBillEndToEnd covers Cloud.Bill: priced usage under the configured
// plan, and false when no plan is configured.
func TestBillEndToEnd(t *testing.T) {
	cfg := econConfig(true)
	plan, err := econ.Plan("provisioned")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Billing = &plan
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "f", ExecTime: 20 * time.Millisecond})
	runOpenLoop(eng, c, []string{"f"}, 20, 100*time.Millisecond)
	cost, ok := c.Bill()
	if !ok {
		t.Fatal("Bill reported no plan")
	}
	if cost.Total <= 0 || cost.Compute <= 0 || cost.Requests <= 0 {
		t.Fatalf("bill missing dimensions: %+v", cost)
	}
	wantTotal := cost.Compute + cost.Idle + cost.Suspended + cost.Requests
	if math.Abs(cost.Total-wantTotal) > 1e-12 {
		t.Fatalf("total %v != sum of parts %v", cost.Total, wantTotal)
	}

	_, c2 := newTestCloud(t, testConfig())
	if _, ok := c2.Bill(); ok {
		t.Fatal("Bill priced without a configured plan")
	}
}

// TestEconRemoveReapsSuspended ensures Remove folds and reaps the suspended
// pool so tenant teardown leaks nothing.
func TestEconRemoveReapsSuspended(t *testing.T) {
	eng, c := newTestCloud(t, econConfig(true))
	deploy(t, c, FunctionSpec{Name: "f", ExecTime: 5 * time.Millisecond})
	runOpenLoop(eng, c, []string{"f"}, 5, 10*time.Millisecond)
	if c.SuspendedInstances("f") == 0 {
		t.Fatal("workload left nothing suspended")
	}
	before := c.Usage()
	if err := c.Remove("f"); err != nil {
		t.Fatal(err)
	}
	eng.Run(0)
	if n := eng.PendingEvents(); n != 0 {
		t.Fatalf("%d events pending after Remove", n)
	}
	after := c.Usage()
	if after.SuspendedGBms < before.SuspendedGBms {
		t.Fatal("Remove lost suspended usage")
	}
	// The record pool accepts and redeploys the reaped tenant.
	deploy(t, c, FunctionSpec{Name: "g"})
	if c.SuspendedInstances("g") != 0 {
		t.Fatal("recycled record kept suspended instances")
	}
}

// TestAutoscalerConfigValidationSurface pins Config-level validation of the
// econ sections.
func TestAutoscalerConfigValidationSurface(t *testing.T) {
	cfg := testConfig()
	cfg.Autoscaler = &econ.AutoscalerConfig{Target: -1}
	eng := des.NewEngine()
	defer eng.Close()
	if _, err := New(eng, cfg, dist.NewStreams(1)); err == nil {
		t.Fatal("bad autoscaler target accepted")
	}
	cfg = testConfig()
	cfg.Billing = &econ.BillingConfig{BusyGBmsRate: math.Inf(1)}
	if _, err := New(eng, cfg, dist.NewStreams(1)); err == nil {
		t.Fatal("bad billing rate accepted")
	}
	_, c := newTestCloud(t, testConfig())
	if err := c.Deploy(FunctionSpec{Name: "f", Runtime: RuntimePython, Method: DeployZIP, MaxConcurrent: -1}); err == nil {
		t.Fatal("negative MaxConcurrent accepted")
	}
}
