package stats

import (
	"fmt"
	"math/rand"
	"slices"
	"time"
)

// CI is a two-sided confidence interval for a percentile estimate.
type CI struct {
	// Point is the sample percentile itself.
	Point time.Duration
	// Lo and Hi bound the interval.
	Lo, Hi time.Duration
	// Confidence is the nominal coverage (e.g., 0.95).
	Confidence float64
}

// String renders the interval compactly.
func (ci CI) String() string {
	return fmt.Sprintf("%v [%v, %v] @%.0f%%",
		ci.Point.Round(time.Millisecond), ci.Lo.Round(time.Millisecond),
		ci.Hi.Round(time.Millisecond), ci.Confidence*100)
}

// PercentileCI estimates a confidence interval for the p-th percentile via
// the bootstrap: resamples resamplings of the data with replacement, the
// percentile of each, and the empirical (alpha/2, 1-alpha/2) quantiles of
// those estimates. Tail percentiles of small samples get wide intervals —
// exactly the signal a tail-latency methodology needs before comparing two
// systems' p99s.
func (s *Sample) PercentileCI(p, confidence float64, resamples int, rng *rand.Rand) CI {
	if s.Len() == 0 {
		panic("stats: bootstrap on empty sample")
	}
	if confidence <= 0 || confidence >= 1 {
		panic(fmt.Sprintf("stats: confidence %v out of (0,1)", confidence))
	}
	if resamples < 10 {
		resamples = 200
	}
	values := s.Values()
	n := len(values)
	estimates := make([]time.Duration, resamples)
	resample := make([]time.Duration, n)
	tmp := &Sample{}
	for r := 0; r < resamples; r++ {
		for i := 0; i < n; i++ {
			resample[i] = values[rng.Intn(n)]
		}
		tmp.values = resample
		tmp.sorted = false
		estimates[r] = tmp.Percentile(p)
	}
	slices.Sort(estimates)
	alpha := 1 - confidence
	lo := estimates[int(alpha/2*float64(resamples))]
	hiIdx := int((1 - alpha/2) * float64(resamples))
	if hiIdx >= resamples {
		hiIdx = resamples - 1
	}
	return CI{
		Point:      s.Percentile(p),
		Lo:         lo,
		Hi:         estimates[hiIdx],
		Confidence: confidence,
	}
}

// MedianCI is PercentileCI at p=50.
func (s *Sample) MedianCI(confidence float64, resamples int, rng *rand.Rand) CI {
	return s.PercentileCI(50, confidence, resamples, rng)
}

// P99CI is PercentileCI at p=99.
func (s *Sample) P99CI(confidence float64, resamples int, rng *rand.Rand) CI {
	return s.PercentileCI(99, confidence, resamples, rng)
}

// Overlaps reports whether two intervals overlap — a quick screen for
// "these two tails are statistically indistinguishable".
func (ci CI) Overlaps(other CI) bool {
	return ci.Lo <= other.Hi && other.Lo <= ci.Hi
}
