package providers

import (
	"time"

	"github.com/stellar-repro/stellar/internal/blobstore"
	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/dist"
)

// VHive models the open-source research stack the paper's infrastructure
// description draws on (vHive [8]: Knative atop Firecracker MicroVMs), as a
// fourth provider profile. It demonstrates the framework's provider-
// agnostic design and gives experiments a baseline with *none* of the
// production optimizations the paper hypothesizes about:
//
//   - no warm generic instance pool (runtime init is fully visible — the
//     academic-system behavior Obs. 3 contrasts against);
//   - a local container registry instead of a cost-optimized blob store
//     (fast, flat image pulls);
//   - a Knative-style autoscaler: requests queue at instances up to a
//     per-instance concurrency target (bounded queueing);
//   - measured from inside the cluster (sub-millisecond propagation).
//
// Cold-start magnitudes follow the vHive paper's reported MicroVM numbers.
func VHive() cloud.Config {
	return cloud.Config{
		Name:           "vhive",
		PropagationRTT: time.Millisecond,

		FrontendDelay: dist.LogNormalMedTail(1500*time.Microsecond, 6*time.Millisecond),
		ResponseDelay: dist.LogNormalMedTail(500*time.Microsecond, 2*time.Millisecond),
		InternalDelay: dist.LogNormalMedTail(800*time.Microsecond, 3*time.Millisecond),
		RoutingDelay:  dist.Constant(300 * time.Microsecond),
		WarmOverhead:  dist.LogNormalMedTail(2*time.Millisecond, 9*time.Millisecond),

		// The Activator absorbs bursts linearly: a single-node ingress has
		// no fleet to scale across.
		CongestionThreshold: 2,
		CongestionUnit:      900 * time.Microsecond,
		CongestionExponent:  0.8,

		SchedulerCapacity: 4,
		PlacementDelay:    dist.LogNormalMedTail(8*time.Millisecond, 30*time.Millisecond),
		Policy: cloud.PolicyConfig{
			// Knative's concurrency-targeted autoscaler: up to the
			// container-concurrency target may queue per instance.
			Kind:                cloud.PolicyBoundedQueue,
			MaxQueuePerInstance: 10,
		},

		// Firecracker MicroVM boot plus guest setup (vHive reports
		// multi-hundred-millisecond full cold boots without snapshots).
		SandboxBoot:     dist.LogNormalMedTail(420*time.Millisecond, 750*time.Millisecond),
		WarmGenericPool: false,
		PooledInit:      dist.LogNormalMedTail(35*time.Millisecond, 90*time.Millisecond),
		RuntimeInit: map[string]dist.Dist{
			cloud.RuntimeMethodKey(cloud.RuntimePython, cloud.DeployZIP):       dist.LogNormalMedTail(250*time.Millisecond, 520*time.Millisecond),
			cloud.RuntimeMethodKey(cloud.RuntimeGo, cloud.DeployZIP):           dist.LogNormalMedTail(35*time.Millisecond, 90*time.Millisecond),
			cloud.RuntimeMethodKey(cloud.RuntimePython, cloud.DeployContainer): dist.LogNormalMedTail(260*time.Millisecond, 560*time.Millisecond),
			cloud.RuntimeMethodKey(cloud.RuntimeGo, cloud.DeployContainer):     dist.LogNormalMedTail(40*time.Millisecond, 100*time.Millisecond),
		},

		// Local registry: flat, fast pulls; no cost-optimized tail and no
		// load-adaptive caching games.
		ImageStore: blobstore.Config{
			Name:               "local-registry",
			GetLatency:         dist.LogNormalMedTail(18*time.Millisecond, 55*time.Millisecond),
			GetBandwidthBps:    8e9,
			BandwidthJitterPct: 0.1,
		},
		// Cluster-local MinIO-style object store for payload transfers.
		PayloadStore: blobstore.Config{
			Name: "minio",
			GetLatency: dist.NewMixture(
				dist.Component{Weight: 0.99, D: dist.LogNormalMedTail(6*time.Millisecond, 30*time.Millisecond)},
				dist.Component{Weight: 0.01, D: dist.LogNormalMedTail(200*time.Millisecond, 600*time.Millisecond)},
			),
			PutLatency: dist.NewMixture(
				dist.Component{Weight: 0.99, D: dist.LogNormalMedTail(6*time.Millisecond, 30*time.Millisecond)},
				dist.Component{Weight: 0.01, D: dist.LogNormalMedTail(200*time.Millisecond, 600*time.Millisecond)},
			),
			GetBandwidthBps:    5e9,
			PutBandwidthBps:    5e9,
			BandwidthJitterPct: 0.15,
		},

		InlineLimitBytes:   32 << 20, // gRPC message ceiling, generous
		InlineBandwidthBps: 2e9,      // cluster-local networking
		InlineJitterPct:    0.15,

		// Knative's default scale-to-zero grace period is short.
		KeepAlive: cloud.KeepAlivePolicy{Fixed: 90 * time.Second},
		Workers:   8,

		DefaultMemoryMB:   2048,
		FullSpeedMemoryMB: 2048,
	}
}

// VHiveSnapshots is VHive with REAP-style MicroVM snapshot/restore cold
// starts enabled: after a function's first boot, later cold starts restore
// in tens of milliseconds instead of re-running the boot pipeline — the
// optimization vHive [8] evaluates as the answer to the cold-start costs
// this paper quantifies.
func VHiveSnapshots() cloud.Config {
	cfg := VHive()
	cfg.Name = "vhive-snapshots"
	cfg.Snapshots = cloud.SnapshotConfig{
		Enabled:         true,
		RestoreDelay:    dist.LogNormalMedTail(45*time.Millisecond, 120*time.Millisecond),
		CaptureOverhead: dist.LogNormalMedTail(150*time.Millisecond, 300*time.Millisecond),
	}
	return cfg
}

func init() {
	Register("vhive", VHive)
	Register("vhive-snapshots", VHiveSnapshots)
}
