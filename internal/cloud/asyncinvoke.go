package cloud

import (
	"fmt"
	"math"
	"time"

	"github.com/stellar-repro/stellar/internal/des"
)

// This file is the callback execution form of the invocation pipeline: a
// warm external request runs as a straight-line chain of engine event
// callbacks with zero goroutine context switches, while Invoke's
// goroutine-proc form remains the general path (chains, faults, tracing,
// retries). The two forms are event-for-event equivalent: every p.Sleep(d)
// in Invoke maps to exactly one CallAfter(d, step) here, every Signal
// fire/timeout to exactly one Call, and all side effects (RNG draws,
// metrics, instance pool transitions) happen at the same virtual instant
// and the same scheduling sequence position. That parity is what makes the
// two forms byte-identical under any interleaving — equal-timestamp events
// tie-break on sequence number, which decides the order concurrent
// requests draw from the shared ingress/instance RNG streams — and it is
// pinned by TestEngineFormsEquivalent and FuzzCallbackSchedule.

// warmCall is one in-flight callback-form invocation. Records are
// free-listed on the Cloud and every step closure is bound once at record
// creation, so the steady-state fast path allocates nothing.
type warmCall struct {
	c    *Cloud
	fn   *Function
	req  *Request
	done func(*Response, error)

	start     des.Time // arrival instant: latency epoch (Invoke's entry)
	busyStart des.Time // serve-window start, for billing
	inst      *Instance
	cold      bool
	congQ     int // congestion queue depth captured before the sleep

	// Buffered-wait state, mirroring WaitTimeout + Signal semantics: the
	// embedded pendingReq sits in Function.buffer; granted/timedOut
	// replicate Signal.remove's fired-vs-timed-out race resolution.
	pr       pendingReq
	timer    des.Timer
	granted  bool
	timedOut bool

	bd   Breakdown
	resp Response

	next *warmCall // Cloud free list

	// Step closures, bound once in newWarmCall so scheduling them is
	// allocation-free.
	beginFn        func()
	frontendFn     func()
	admitFn        func()
	slowProbFn     func()
	slowDoneFn     func()
	acquireFn      func()
	queueResumeFn  func()
	handoffDoneFn  func()
	overheadDoneFn func()
	execDoneFn     func()
	respDoneFn     func()
	finishFn       func()
	timeoutFn      func()
}

func newWarmCall(c *Cloud) *warmCall {
	wc := &warmCall{c: c}
	wc.pr.wc = wc
	wc.beginFn = wc.begin
	wc.frontendFn = wc.frontend
	wc.admitFn = wc.admit
	wc.slowProbFn = wc.slowProb
	wc.slowDoneFn = wc.slowDone
	wc.acquireFn = wc.acquire
	wc.queueResumeFn = wc.queueResume
	wc.handoffDoneFn = wc.handoffDone
	wc.overheadDoneFn = wc.overheadDone
	wc.execDoneFn = wc.execDone
	wc.respDoneFn = wc.respDone
	wc.finishFn = wc.finish
	wc.timeoutFn = wc.timeout
	return wc
}

func (c *Cloud) getWarmCall() *warmCall {
	wc := c.wcFree
	if wc == nil {
		return newWarmCall(c)
	}
	c.wcFree = wc.next
	return wc
}

func (c *Cloud) putWarmCall(wc *warmCall) {
	wc.fn, wc.req, wc.done, wc.inst = nil, nil, nil, nil
	wc.cold, wc.granted, wc.timedOut = false, false, false
	wc.congQ = 0
	wc.pr = pendingReq{wc: wc}
	wc.timer = des.Timer{}
	wc.bd = Breakdown{}
	wc.resp = Response{}
	wc.next = c.wcFree
	c.wcFree = wc
}

// callbackEligible reports whether a request can take the callback fast
// path. Anything that needs the general machinery — chains, storage
// payloads, fault injection, crash retries, span tracing — falls back to
// the proc form.
func (c *Cloud) callbackEligible(req *Request, fn *Function) bool {
	return !req.Internal &&
		fn.spec.Chain == nil &&
		req.Cont == nil && req.Span == nil &&
		req.storageKey == "" && req.wireDelay == 0 &&
		c.tr == nil && c.inj == nil &&
		c.cfg.Faults.CrashProb == 0
}

// InvokeAsync executes one invocation and delivers the outcome to done
// exactly once, at the virtual instant the response reaches the client.
// The request begins at the current instant (like Spawn, execution starts
// when the engine reaches it). Under EngineAuto/EngineCallback, eligible
// warm-path requests run as a callback chain with zero goroutine switches
// and zero steady-state allocations; everything else — and every request
// under EngineProc — runs the classic Invoke proc, so both forms produce
// identical schedules (see TestEngineFormsEquivalent).
//
// The *Response passed to done is only valid for the duration of the call:
// the fast path recycles it, and its Timestamps map is nil (intra-function
// timestamps exist only for chains, which always take the proc form).
func (c *Cloud) InvokeAsync(req *Request, done func(*Response, error)) {
	fn, ok := c.functions[req.Fn]
	if !ok || c.mode == EngineProc || !c.callbackEligible(req, fn) {
		c.eng.Spawn("cloud/invoke", func(p *des.Proc) {
			done(c.Invoke(p, req))
		})
		return
	}
	wc := c.getWarmCall()
	wc.fn, wc.req, wc.done = fn, req, done
	c.eng.Call(wc.beginFn)
}

// begin runs at the arrival instant: admission bookkeeping and the
// client→provider propagation leg (Invoke's entry through its first
// Sleep).
func (wc *warmCall) begin() {
	c, fn := wc.c, wc.fn
	c.metrics.Invocations++
	fn.tm.Invocations++
	fn.inflight++
	wc.start = c.eng.Now()
	fn.meter.Request()
	c.meter.Request()
	if fn.maxConcurrent > 0 && fn.inflight > fn.maxConcurrent {
		c.metrics.ConcurrencyRejects++
		wc.fail(fmt.Errorf("cloud %s: %s over concurrency limit %d: %w",
			c.cfg.Name, fn.spec.Name, fn.maxConcurrent, ErrConcurrencyLimit))
		return
	}
	if fn.as != nil {
		fn.autoscaleAdmit()
	}
	wc.bd.Propagation = c.cfg.PropagationRTT
	c.eng.CallAfter(c.cfg.PropagationRTT/2, wc.frontendFn)
}

// frontend samples front-end admission and sleeps through it.
func (wc *warmCall) frontend() {
	c := wc.c
	wc.bd.Frontend = c.cfg.FrontendDelay.Sample(c.rngIngress)
	c.eng.CallAfter(wc.bd.Frontend, wc.admitFn)
}

// admit applies ingestion congestion under concurrent load, exactly as
// Invoke does: the queue depth is captured before the congestion sleep and
// reused for the slow-path probability after it.
func (wc *warmCall) admit() {
	c := wc.c
	if q := wc.fn.inflight - 1 - c.cfg.CongestionThreshold; q > 0 {
		exp := c.cfg.CongestionExponent
		if exp == 0 {
			exp = 1
		}
		extra := time.Duration(float64(c.cfg.CongestionUnit) * math.Pow(float64(q), exp))
		if c.cfg.CongestionCap > 0 && extra > c.cfg.CongestionCap {
			extra = c.cfg.CongestionCap
		}
		wc.bd.Congestion = extra
		wc.congQ = q
		c.eng.CallAfter(extra, wc.slowProbFn)
		return
	}
	wc.route()
}

// slowProb draws the slow-path lottery after the congestion delay.
func (wc *warmCall) slowProb() {
	c := wc.c
	prob := float64(wc.congQ) * c.cfg.SlowPathProbPerInflight
	if prob > c.cfg.SlowPathMaxProb {
		prob = c.cfg.SlowPathMaxProb
	}
	if prob > 0 && c.rngIngress.Float64() < prob {
		wc.bd.SlowPath = c.cfg.SlowPathDelay.Sample(c.rngIngress)
		c.eng.CallAfter(wc.bd.SlowPath, wc.slowDoneFn)
		return
	}
	wc.route()
}

func (wc *warmCall) slowDone() {
	wc.c.metrics.SlowPaths++
	wc.route()
}

// route samples load-balancer routing and moves on to acquisition.
func (wc *warmCall) route() {
	c := wc.c
	wc.bd.Routing = c.cfg.RoutingDelay.Sample(c.rngIngress)
	c.eng.CallAfter(wc.bd.Routing, wc.acquireFn)
}

// acquire claims an idle instance or buffers the request, arming the
// gateway queue timeout exactly where Invoke's WaitTimeout would.
func (wc *warmCall) acquire() {
	c, fn := wc.c, wc.fn
	if inst := fn.claimIdle(); inst != nil {
		wc.serveOn(inst)
		return
	}
	wc.pr.inst, wc.pr.handoff = nil, false
	wc.pr.enqueued = c.eng.Now()
	fn.buffer = append(fn.buffer, &wc.pr)
	fn.maybeScale()
	if c.cfg.QueueTimeout > 0 {
		wc.timer = c.eng.After(c.cfg.QueueTimeout, wc.timeoutFn)
	}
}

// grantNotify is Signal.Fire's counterpart, called by Function.grant when
// this buffered request is handed an instance. A grant landing after the
// timeout already fired schedules nothing — the timed-out resume finds
// pr.inst and returns the instance, the PR 4 grant-race contract.
func (wc *warmCall) grantNotify() {
	if wc.timedOut {
		return
	}
	wc.granted = true
	wc.c.eng.Call(wc.queueResumeFn)
}

// timeout is the queue deadline firing; mirrors WaitTimeout's timer
// closure, where a grant at this same instant that was dispatched first
// wins and the timer backs off.
func (wc *warmCall) timeout() {
	if wc.granted {
		return
	}
	wc.timedOut = true
	wc.c.eng.Call(wc.queueResumeFn)
}

// queueResume runs when the buffered wait ends, by grant or by timeout.
func (wc *warmCall) queueResume() {
	c, fn := wc.c, wc.fn
	if wc.timedOut {
		fn.dropBuffered(&wc.pr)
		if wc.pr.inst != nil {
			fn.release(wc.pr.inst)
		}
		c.metrics.QueueTimeouts++
		wc.fail(fmt.Errorf("cloud %s: %s buffered for %v: %w",
			c.cfg.Name, fn.spec.Name, c.cfg.QueueTimeout, ErrQueueTimeout))
		return
	}
	if c.cfg.QueueTimeout > 0 {
		wc.timer.Cancel()
		wc.timer = des.Timer{}
	}
	inst := wc.pr.inst
	wc.bd.QueueWait = c.eng.Now() - wc.pr.enqueued
	if wc.pr.handoff {
		wc.inst = inst
		wc.bd.QueueHandoff = c.cfg.QueueHandoffDelay.Sample(c.rngInstance)
		c.eng.CallAfter(wc.bd.QueueHandoff, wc.handoffDoneFn)
		return
	}
	wc.serveOn(inst)
}

func (wc *warmCall) handoffDone() { wc.serveOn(wc.inst) }

// serveOn is serve's fast form: per-invocation overhead, then execution.
// A freshly spawned instance granted to this request still counts as a
// cold serve — the spawn pipeline itself ran as a proc; only the serving
// is callback-form.
func (wc *warmCall) serveOn(inst *Instance) {
	c := wc.c
	wc.inst = inst
	wc.cold = inst.served == 0
	inst.served++
	if wc.cold {
		c.metrics.ColdServed++
		wc.fn.tm.ColdServed++
		wc.bd.ColdStart = inst.coldBreakdown
	} else {
		c.metrics.WarmServed++
		wc.fn.tm.WarmServed++
	}
	wc.busyStart = c.eng.Now()
	wc.bd.Overhead = c.cfg.WarmOverhead.Sample(c.rngInstance)
	c.eng.CallAfter(wc.bd.Overhead, wc.overheadDoneFn)
}

// overheadDone starts the busy-spin execution; an instant handler falls
// straight through with no event, as Invoke's exec==0 path sleeps nothing.
func (wc *warmCall) overheadDone() {
	c, fn := wc.c, wc.fn
	exec := wc.req.ExecTime
	if exec == 0 {
		exec = fn.spec.ExecTime
	}
	if exec > 0 {
		exec = time.Duration(float64(exec) * c.cfg.throttleFactor(fn.spec.MemoryMB))
		wc.bd.Exec = exec
		c.eng.CallAfter(exec, wc.execDoneFn)
		return
	}
	wc.execDone()
}

// execDone closes the serve window: billing, instance release (before the
// response path, as Invoke releases), and the response-path delay.
func (wc *warmCall) execDone() {
	c, fn := wc.c, wc.fn
	gbs := (c.eng.Now() - wc.busyStart).Seconds() * c.cfg.memoryGB(fn.spec.MemoryMB)
	wc.resp.BilledGBSeconds = gbs
	c.metrics.BilledGBSeconds += gbs
	// Capture the instance id before release: instance records are pooled,
	// and a short keep-alive can expire and recycle this one while the
	// response path is still in flight.
	wc.resp.InstanceID = wc.inst.id
	fn.release(wc.inst)
	wc.bd.ResponsePath = c.cfg.ResponseDelay.Sample(c.rngIngress)
	c.eng.CallAfter(wc.bd.ResponsePath, wc.respDoneFn)
}

// respDone is the provider→client propagation leg.
func (wc *warmCall) respDone() {
	wc.c.eng.CallAfter(wc.c.cfg.PropagationRTT/2, wc.finishFn)
}

// finish delivers the response at the instant it reaches the client and
// recycles the record.
func (wc *warmCall) finish() {
	c, fn := wc.c, wc.fn
	resp := &wc.resp
	resp.Fn = fn.spec.Name
	resp.Cold = wc.cold
	resp.QueueWait = wc.bd.QueueWait
	resp.Attempts = 1
	resp.Breakdown = wc.bd
	fn.inflight--
	if c.latRec != nil {
		c.latRec.Add(c.eng.Now() - wc.start)
	}
	if fn.rec != nil {
		fn.rec.Add(c.eng.Now() - wc.start)
	}
	wc.done(resp, nil)
	c.putWarmCall(wc)
}

// fail delivers an error outcome (gateway queue timeout is the only one
// the fast path can produce) and recycles the record. As in Invoke's error
// return, no egress legs run and no latency is recorded.
func (wc *warmCall) fail(err error) {
	wc.fn.tm.Errors++
	wc.fn.inflight--
	wc.done(nil, err)
	wc.c.putWarmCall(wc)
}
