package providers

import (
	"time"

	"github.com/stellar-repro/stellar/internal/blobstore"
	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/dist"
)

// AWS models AWS Lambda as characterized in the paper:
//
//   - MicroVM (Firecracker) sandboxes with fast boots.
//   - A warm pool of generic instances that makes ZIP cold starts nearly
//     runtime-independent (Obs. 3).
//   - A no-queue scheduling policy: every request in a burst gets a
//     dedicated instance (§VI-D2, corroborated by AWS docs).
//   - An image store that caches a function's image after the first
//     retrieval, making bursty cold starts *cheaper* than individual ones
//     (§VI-D2's storage-side caching hypothesis).
//   - Fixed 10-minute keep-alive for idle instances (§V footnote 5).
//   - Container deployments of interpreted runtimes pay on-demand chunk
//     loads against the image store (§VI-B3).
func AWS() cloud.Config {
	return cloud.Config{
		Name:           "aws",
		PropagationRTT: 26 * time.Millisecond, // CloudLab Utah -> us-west (§V)

		FrontendDelay: dist.LogNormalMedTail(7*time.Millisecond, 55*time.Millisecond),
		ResponseDelay: dist.LogNormalMedTail(4*time.Millisecond, 10*time.Millisecond),
		InternalDelay: dist.LogNormalMedTail(4*time.Millisecond, 18*time.Millisecond),
		RoutingDelay:  dist.Constant(time.Millisecond),
		WarmOverhead:  dist.LogNormalMedTail(6*time.Millisecond, 32*time.Millisecond),

		// Burst ingestion: a scale-out front-end fleet absorbs bursts
		// sublinearly; rare requests hit throttling/retry slow paths.
		CongestionThreshold:     3,
		CongestionUnit:          6500 * time.Microsecond,
		CongestionExponent:      0.40,
		SlowPathProbPerInflight: 0.0005,
		SlowPathMaxProb:         0.25,
		SlowPathDelay:           dist.LogNormalMedTail(420*time.Millisecond, 800*time.Millisecond),

		// Wide scheduler: mass cold starts barely contend.
		SchedulerCapacity: 64,
		PlacementDelay:    dist.LogNormalMedTail(15*time.Millisecond, 40*time.Millisecond),
		Policy:            cloud.PolicyConfig{Kind: cloud.PolicyNoQueue},

		SandboxBoot:     dist.LogNormalMedTail(95*time.Millisecond, 160*time.Millisecond),
		WarmGenericPool: true,
		PooledInit:      dist.LogNormalMedTail(90*time.Millisecond, 200*time.Millisecond),
		RuntimeInit: map[string]dist.Dist{
			// Containers skip the generic pool; Go's static binary still
			// initializes quickly, Python's import machinery is slower and
			// more variable.
			cloud.RuntimeMethodKey(cloud.RuntimeGo, cloud.DeployContainer):     dist.LogNormalMedTail(135*time.Millisecond, 420*time.Millisecond),
			cloud.RuntimeMethodKey(cloud.RuntimePython, cloud.DeployContainer): dist.LogNormalMedTail(160*time.Millisecond, 480*time.Millisecond),
		},
		ContainerChunkReads: map[cloud.Runtime]int{cloud.RuntimePython: 40},
		// Most chunk reads are fast; a few percent hit the cost-optimized
		// store's slow path, which is what blows up the Python+container
		// tail (TMR 4.7 in Fig. 5).
		ChunkReadLatency: dist.NewMixture(
			dist.Component{Weight: 0.98, D: dist.LogNormalMedTail(time.Millisecond, 4*time.Millisecond)},
			dist.Component{Weight: 0.02, D: dist.LogNormalMedTail(180*time.Millisecond, 1300*time.Millisecond)},
		),

		ImageStore: blobstore.Config{
			Name:                 "aws-image-store",
			GetLatency:           dist.LogNormalMedTail(140*time.Millisecond, 280*time.Millisecond),
			GetBandwidthBps:      900e6,
			SmallObjectBytes:     16 << 20,
			SmallGetBandwidthBps: 4e9,
			BandwidthJitterPct:   0.35,
			Cache: blobstore.CacheConfig{
				Enabled:          true,
				ActivationCount:  1, // cache after the first retrieval
				ActivationWindow: time.Minute,
				TTL:              3 * time.Minute,
				HitLatency:       dist.LogNormalMedTail(8*time.Millisecond, 24*time.Millisecond),
				HitBandwidthBps:  8e9,
			},
		},
		PayloadStore: blobstore.Config{
			Name: "aws-s3",
			GetLatency: dist.NewMixture(
				dist.Component{Weight: 0.975, D: dist.LogNormalMedTail(35*time.Millisecond, 130*time.Millisecond)},
				dist.Component{Weight: 0.025, D: dist.LogNormalMedTail(520*time.Millisecond, 1600*time.Millisecond)},
			),
			PutLatency: dist.NewMixture(
				dist.Component{Weight: 0.975, D: dist.LogNormalMedTail(35*time.Millisecond, 130*time.Millisecond)},
				dist.Component{Weight: 0.025, D: dist.LogNormalMedTail(520*time.Millisecond, 1600*time.Millisecond)},
			),
			GetBandwidthBps:    2e9,
			PutBandwidthBps:    2e9,
			BandwidthJitterPct: 0.2,
		},

		InlineLimitBytes:   6 << 20, // 6MB (§VI-C1)
		InlineBandwidthBps: 264e6,   // measured effective inline bandwidth
		InlineJitterPct:    0.25,

		KeepAlive:         cloud.KeepAlivePolicy{Fixed: 10 * time.Minute},
		DefaultMemoryMB:   2048,
		FullSpeedMemoryMB: 1769,
		Workers:           64,
	}
}

// Representative deployment-package sizes used by the experiments: the
// Python ZIP carries interpreter dependencies, the Go ZIP only a static
// binary. Container images lazy-load from shared base layers, so their
// *fetched* bytes match the ZIP payload (the paper's explanation for Go
// container ~ Go ZIP cold starts).
const (
	PythonZipBytes = 12 << 20
	GoZipBytes     = 4 << 20
)

// BaseZipBytes maps runtimes to their representative package sizes.
func BaseZipBytes() map[cloud.Runtime]int64 {
	return map[cloud.Runtime]int64{
		cloud.RuntimePython: PythonZipBytes,
		cloud.RuntimeGo:     GoZipBytes,
	}
}
