package azuretrace

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// sampleMany draws n values and returns them sorted.
func sampleMany(t *testing.T, r Record, n int, seed int64) []time.Duration {
	t.Helper()
	d, err := Synthesize(r)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = d.Sample(rng)
		if out[i] <= 0 {
			t.Fatalf("sample %d non-positive: %v", i, out[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func pct(sorted []time.Duration, p float64) time.Duration {
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

func within(t *testing.T, label string, got, want time.Duration, tol float64) {
	t.Helper()
	lo := float64(want) * (1 - tol)
	hi := float64(want) * (1 + tol)
	if float64(got) < lo || float64(got) > hi {
		t.Errorf("%s = %v, want %v +/- %.0f%%", label, got, want, tol*100)
	}
}

// TestSynthesizeRecoversPercentiles is the core property: sampling the
// synthesized distribution reproduces the record's own percentile ladder.
func TestSynthesizeRecoversPercentiles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, r := range Generate(20, rng) {
		samples := sampleMany(t, r, 50_000, 11)
		within(t, r.Function+" median", pct(samples, 50), r.Median(), 0.05)
		within(t, r.Function+" p75", pct(samples, 75), r.Percentiles[75], 0.05)
		within(t, r.Function+" p99", pct(samples, 99), r.P99(), 0.10)
		// Tail-to-median ratio of the samples tracks the record's TMR.
		gotTMR := float64(pct(samples, 99)) / float64(pct(samples, 50))
		wantTMR := r.TMR()
		if gotTMR < wantTMR*0.85 || gotTMR > wantTMR*1.15 {
			t.Errorf("%s TMR = %.2f, want %.2f +/- 15%%", r.Function, gotTMR, wantTMR)
		}
	}
}

// TestSynthesizeTailBounded: extrapolation past p99 never exceeds 4x p99.
func TestSynthesizeTailBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, r := range Generate(10, rng) {
		samples := sampleMany(t, r, 50_000, 5)
		capV := 4 * r.P99()
		if max := samples[len(samples)-1]; max > capV {
			t.Errorf("%s max sample %v beyond 4x p99 (%v)", r.Function, max, capV)
		}
	}
}

// TestSynthesizeLowerTaper: samples below p25 stay above half the p25 knot.
func TestSynthesizeLowerTaper(t *testing.T) {
	r := Record{Function: "taper", Percentiles: map[int]time.Duration{
		25: 100 * time.Millisecond,
		50: 200 * time.Millisecond,
		75: 400 * time.Millisecond,
		95: time.Second,
		99: 2 * time.Second,
	}}
	samples := sampleMany(t, r, 20_000, 9)
	if min := samples[0]; min < 50*time.Millisecond-time.Millisecond {
		t.Errorf("min sample %v below p25/2", min)
	}
}

// TestSynthesizeDeterministic: same record + same seed, same stream.
func TestSynthesizeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	r := Generate(1, rng)[0]
	a := sampleMany(t, r, 1000, 17)
	b := sampleMany(t, r, 1000, 17)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSynthesizeRejectsBadRecords(t *testing.T) {
	cases := []Record{
		{Function: "empty"},
		{Function: "single", Percentiles: map[int]time.Duration{50: time.Second}},
		{Function: "zero", Percentiles: map[int]time.Duration{50: 0, 99: time.Second}},
		{Function: "nonmono", Percentiles: map[int]time.Duration{50: 2 * time.Second, 99: time.Second}},
		{Function: "range", Percentiles: map[int]time.Duration{0: time.Second, 50: time.Second}},
		{Function: "range2", Percentiles: map[int]time.Duration{50: time.Second, 100: 2 * time.Second}},
	}
	for _, r := range cases {
		if _, err := Synthesize(r); err == nil {
			t.Errorf("%s: want error, got nil", r.Function)
		}
	}
}

func TestSynthesizeString(t *testing.T) {
	r := Record{Function: "fn-42", Percentiles: map[int]time.Duration{
		50: time.Second, 99: 3 * time.Second,
	}}
	d, err := Synthesize(r)
	if err != nil {
		t.Fatal(err)
	}
	if s := d.String(); s != "azuretrace-ladder(fn-42)" {
		t.Errorf("String() = %q", s)
	}
}
