package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"

	"github.com/stellar-repro/stellar/internal/azuretrace"
	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/dist"
	"github.com/stellar-repro/stellar/internal/econ"
	"github.com/stellar-repro/stellar/internal/providers"
	"github.com/stellar-repro/stellar/internal/runner"
	"github.com/stellar-repro/stellar/internal/stats"
	"github.com/stellar-repro/stellar/internal/stats/sketch"
	"github.com/stellar-repro/stellar/internal/workflow"
)

// CostPolicy is one control-plane configuration swept by the cost
// experiment: either a legacy fixed keep-alive (Autoscaler nil) or a
// target-concurrency autoscaler, optionally with suspend/resume.
type CostPolicy struct {
	// Name labels the policy in reports ("keepalive-5m", "target-1").
	Name string `json:"name"`
	// KeepAlive is the fixed keep-alive used when Autoscaler is nil.
	KeepAlive time.Duration `json:"keepalive_ns,omitempty"`
	// Autoscaler, when non-nil, replaces keep-alive expiry with the
	// target-concurrency control loop.
	Autoscaler *econ.AutoscalerConfig `json:"autoscaler,omitempty"`
}

// ParseCostPolicy builds a policy from its report name, so CLI sweeps can
// name points directly:
//
//	keepalive-<dur>    fixed keep-alive, e.g. keepalive-5m
//	target-<n>         autoscaler at per-instance concurrency n, suspending
//	                   surplus instances on scale-down
//	target-<n>-evict   same, but surplus instances are evicted outright
func ParseCostPolicy(name string) (CostPolicy, error) {
	switch {
	case strings.HasPrefix(name, "keepalive-"):
		ka, err := time.ParseDuration(strings.TrimPrefix(name, "keepalive-"))
		if err != nil || ka <= 0 {
			return CostPolicy{}, fmt.Errorf("cost: bad keep-alive policy %q", name)
		}
		return CostPolicy{Name: name, KeepAlive: ka}, nil
	case strings.HasPrefix(name, "target-"):
		spec := strings.TrimPrefix(name, "target-")
		suspend := true
		if s, ok := strings.CutSuffix(spec, "-evict"); ok {
			spec, suspend = s, false
		}
		target, err := strconv.ParseFloat(spec, 64)
		if err != nil || target <= 0 || math.IsInf(target, 0) {
			return CostPolicy{}, fmt.Errorf("cost: bad target policy %q", name)
		}
		return CostPolicy{Name: name, Autoscaler: &econ.AutoscalerConfig{
			Target:          target,
			TickInterval:    2 * time.Second,
			ScaleDownWindow: 30 * time.Second,
			Suspend:         suspend,
		}}, nil
	default:
		return CostPolicy{}, fmt.Errorf("cost: unknown policy %q (want keepalive-<dur>, target-<n>, or target-<n>-evict)", name)
	}
}

// DefaultCostPolicies is the default sweep axis: the legacy keep-alive
// provider plus three autoscaler operating points, so the frontier spans
// both control-plane families.
func DefaultCostPolicies() []CostPolicy {
	names := []string{"keepalive-5m", "target-1", "target-2", "target-8-evict"}
	policies := make([]CostPolicy, len(names))
	for i, n := range names {
		p, err := ParseCostPolicy(n)
		if err != nil {
			panic(err) // the default names are parseable by construction
		}
		policies[i] = p
	}
	return policies
}

// CostOptions configures the cost/latency sweep: the PR-8 multi-tenant
// replay runs once per control-plane policy, the accumulated usage is
// priced under every billing plan at read time, and the report pairs
// cost-per-million-requests with tail latency — the trade-off the
// keep-alive and autoscaler knobs actually walk.
type CostOptions struct {
	// Provider is the provider profile under test.
	Provider string
	// Tenants is the synthesized population size.
	Tenants int
	// Duration is the arrival window per shard.
	Duration time.Duration
	// Shards splits the population into independent simulations (default 8).
	Shards int
	// Workers bounds concurrently running shard simulations (0 = GOMAXPROCS).
	Workers int
	// Seed roots population synthesis and every shard's randomness.
	Seed int64
	// Policies is the swept control-plane axis (default DefaultCostPolicies).
	Policies []CostPolicy
	// Plans is the billing axis usage is priced under (default all built-in
	// plans; custom plans, e.g. from econ.LoadFile, join the sweep as peers).
	// One replay per policy is priced under every plan.
	Plans []econ.BillingConfig
	// MeanIATLo/Hi bound each tenant's mean inter-arrival time, drawn
	// log-uniformly (default 1s..60s), floored at the tenant's median
	// execution time — identical to the tenants experiment.
	MeanIATLo time.Duration
	MeanIATHi time.Duration
	// Alpha is the latency sketch relative-accuracy target (default 0.02).
	Alpha float64
	// MaxConcurrency caps each tenant's instances (default 16, negative =
	// uncapped).
	MaxConcurrency int
	// ResumeDelay is the suspended→running resume latency under autoscaler
	// policies (default 50ms — well below any cold boot).
	ResumeDelay time.Duration
	// Workflow, when set, additionally deploys this PR-9 topology preset in
	// every shard and reports its cost-per-application under each plan.
	Workflow string
	// Apps is the total workflow launches across shards (default 64 when
	// Workflow is set).
	Apps uint64
	// AppIAT is the inter-arrival time between workflow launches within one
	// shard (default 500ms).
	AppIAT time.Duration
	// AppExec is the per-node busy time of the workflow app (default 20ms).
	AppExec time.Duration
	// SlackTick routes keep-alive expiries onto the timer wheel (0 = exact).
	SlackTick time.Duration
	// Engine selects the invocation execution form.
	Engine cloud.EngineMode
}

func (o CostOptions) normalized() CostOptions {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if len(o.Policies) == 0 {
		o.Policies = DefaultCostPolicies()
	}
	if len(o.Plans) == 0 {
		for _, name := range econ.Plans() {
			plan, err := econ.Plan(name)
			if err != nil {
				panic(err) // the listed built-ins resolve by construction
			}
			o.Plans = append(o.Plans, plan)
		}
	}
	if o.MeanIATLo <= 0 {
		o.MeanIATLo = time.Second
	}
	if o.MeanIATHi <= 0 {
		o.MeanIATHi = time.Minute
	}
	if o.Alpha == 0 {
		o.Alpha = 0.02
	}
	if o.MaxConcurrency == 0 {
		o.MaxConcurrency = 16
	}
	if o.MaxConcurrency < 0 {
		o.MaxConcurrency = 0
	}
	if o.ResumeDelay <= 0 {
		o.ResumeDelay = 50 * time.Millisecond
	}
	if o.Workflow != "" {
		if o.Apps == 0 {
			o.Apps = 64
		}
		if o.AppIAT <= 0 {
			o.AppIAT = 500 * time.Millisecond
		}
		if o.AppExec <= 0 {
			o.AppExec = 20 * time.Millisecond
		}
	}
	return o
}

func (o CostOptions) validate() error {
	if o.Provider == "" {
		return fmt.Errorf("cost: provider is required")
	}
	if o.Tenants <= 0 {
		return fmt.Errorf("cost: need at least one tenant")
	}
	if o.Duration <= 0 {
		return fmt.Errorf("cost: duration must be positive")
	}
	seen := make(map[string]bool, len(o.Policies))
	for i := range o.Policies {
		p := &o.Policies[i]
		if p.Name == "" {
			return fmt.Errorf("cost: policy %d has no name", i)
		}
		if seen[p.Name] {
			return fmt.Errorf("cost: duplicate policy %q", p.Name)
		}
		seen[p.Name] = true
		if p.Autoscaler != nil {
			if err := p.Autoscaler.Validate(); err != nil {
				return fmt.Errorf("cost: policy %q: %w", p.Name, err)
			}
		} else if p.KeepAlive <= 0 {
			return fmt.Errorf("cost: policy %q needs a positive keep-alive or an autoscaler", p.Name)
		}
	}
	seenPlan := make(map[string]bool, len(o.Plans))
	for i := range o.Plans {
		plan := &o.Plans[i]
		if plan.Name == "" {
			return fmt.Errorf("cost: plan %d has no name", i)
		}
		if seenPlan[plan.Name] {
			return fmt.Errorf("cost: duplicate plan %q", plan.Name)
		}
		seenPlan[plan.Name] = true
		if err := plan.Validate(); err != nil {
			return fmt.Errorf("cost: plan %q: %w", plan.Name, err)
		}
	}
	if o.MeanIATLo > o.MeanIATHi {
		return fmt.Errorf("cost: mean IAT bounds inverted (%v > %v)", o.MeanIATLo, o.MeanIATHi)
	}
	if o.SlackTick < 0 {
		return fmt.Errorf("cost: negative slack tick")
	}
	if o.Workflow != "" {
		if _, err := workflow.Preset(o.Workflow, workflow.PresetSpec{}); err != nil {
			return fmt.Errorf("cost: %w", err)
		}
		if o.Apps > 0 && uint64(o.Shards) > o.Apps {
			return fmt.Errorf("cost: %d shards for %d workflow launches", o.Shards, o.Apps)
		}
	}
	return nil
}

// tenantsView projects the cost options onto the tenant-population
// synthesizer, so both experiments draw the identical population from the
// same seed.
func (o CostOptions) tenantsView() TenantsOptions {
	return TenantsOptions{
		Seed:      o.Seed,
		Tenants:   o.Tenants,
		MeanIATLo: o.MeanIATLo,
		MeanIATHi: o.MeanIATHi,
	}
}

// CostPlanPoint is one (policy, plan) cell of the sweep: the replay's usage
// priced under one billing plan, paired with the policy's tail latency to
// form a frontier coordinate.
type CostPlanPoint struct {
	Plan string    `json:"plan"`
	Cost econ.Cost `json:"cost"`
	// CostPerMReq is dollars per million metered requests under this plan.
	CostPerMReq float64 `json:"cost_per_mreq"`
	// P99 echoes the policy's tail latency — the frontier's other axis.
	P99 time.Duration `json:"p99_ns"`
	// Pareto marks cells not dominated on (CostPerMReq, P99) across
	// policies within the same plan: the operating points a provider
	// committed to this plan would actually pick.
	Pareto bool `json:"pareto"`
	// AppTotal/AppPerKRuns price the workflow app's own usage (only when
	// the sweep carries a workflow app).
	AppTotal    float64 `json:"app_total,omitempty"`
	AppPerKRuns float64 `json:"app_per_k_runs,omitempty"`
}

// CostAppPoint is the workflow app's outcome under one policy.
type CostAppPoint struct {
	Topology    string        `json:"topology"`
	Launched    uint64        `json:"launched"`
	Completed   uint64        `json:"completed"`
	Failed      uint64        `json:"failed"`
	Usage       econ.Usage    `json:"usage"`
	MakespanP50 time.Duration `json:"makespan_p50_ns"`
	MakespanP99 time.Duration `json:"makespan_p99_ns"`
}

// CostPolicyPoint is one control-plane policy's merged outcome across
// shards, plus its pricing under every plan.
type CostPolicyPoint struct {
	Policy      string `json:"policy"`
	Autoscaled  bool   `json:"autoscaled"`
	Invocations uint64 `json:"invocations"`
	ColdServed  uint64 `json:"cold_served"`
	WarmServed  uint64 `json:"warm_served"`
	Errors      uint64 `json:"errors"`
	Expirations uint64 `json:"expirations"`
	Suspends    uint64 `json:"suspends"`
	Resumes     uint64 `json:"resumes"`
	ColdRate    float64 `json:"cold_rate"`
	// Usage is the fleet's metered resource consumption; pricing derives
	// from it at read time, so every plan shares one replay.
	Usage           econ.Usage      `json:"usage"`
	InstanceSeconds float64         `json:"instance_seconds"`
	Latency         stats.Summary   `json:"latency"`
	VirtualTime     time.Duration   `json:"virtual_ns"`
	Plans           []CostPlanPoint `json:"plans"`
	App             *CostAppPoint   `json:"app,omitempty"`

	sketch *sketch.Sketch
}

// LatencySketch returns the policy's merged tenant-latency sketch (nil on
// records rebuilt from JSON).
func (p *CostPolicyPoint) LatencySketch() *sketch.Sketch { return p.sketch }

// CostResult is the full sweep outcome, points in policy order.
type CostResult struct {
	Provider string            `json:"provider"`
	Tenants  int               `json:"tenants"`
	Duration time.Duration     `json:"duration_ns"`
	Shards   int               `json:"shards"`
	Seed     int64             `json:"seed"`
	Workflow string            `json:"workflow,omitempty"`
	Points   []CostPolicyPoint `json:"points"`
}

// costShard is one (policy, shard) simulation's raw outcome.
type costShard struct {
	inv, cold, warm, errs uint64
	expirations           uint64
	suspends, resumes     uint64
	instSec               float64
	usage                 econ.Usage
	sk                    *sketch.Sketch
	virtual               time.Duration

	appLaunched, appCompleted, appFailed uint64
	appUsage                             econ.Usage
	appSk                                *sketch.Sketch
}

// RunCost executes the cost/latency sweep: every policy replays the same
// synthesized tenant population (shard seeds ignore the policy index), the
// metered usage is priced under every plan, and Pareto frontiers are marked
// per plan on (cost-per-million-requests, p99).
func RunCost(opts CostOptions) (*CostResult, error) {
	opts = opts.normalized()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	pop := synthesizeTenants(opts.tenantsView())

	units := len(opts.Policies) * opts.Shards
	shards, err := runner.Map(runner.Pool{Workers: opts.Workers, Seed: opts.Seed}, units,
		func(sh runner.Shard) (*costShard, error) {
			pol := opts.Policies[sh.Index/opts.Shards]
			shardIdx := sh.Index % opts.Shards
			return runCostShard(opts, pop, pol, shardIdx)
		})
	if err != nil {
		return nil, err
	}

	res := &CostResult{
		Provider: opts.Provider,
		Tenants:  opts.Tenants,
		Duration: opts.Duration,
		Shards:   opts.Shards,
		Seed:     opts.Seed,
		Workflow: opts.Workflow,
	}
	for pi, pol := range opts.Policies {
		point := CostPolicyPoint{
			Policy:     pol.Name,
			Autoscaled: pol.Autoscaler != nil,
			sketch:     sketch.New(opts.Alpha),
		}
		appSk := sketch.New(opts.Alpha)
		var app CostAppPoint
		for _, sh := range shards[pi*opts.Shards : (pi+1)*opts.Shards] {
			point.Invocations += sh.inv
			point.ColdServed += sh.cold
			point.WarmServed += sh.warm
			point.Errors += sh.errs
			point.Expirations += sh.expirations
			point.Suspends += sh.suspends
			point.Resumes += sh.resumes
			point.InstanceSeconds += sh.instSec
			point.Usage.Add(sh.usage)
			if sh.sk.Count() > 0 {
				if err := point.sketch.Merge(sh.sk); err != nil {
					return nil, fmt.Errorf("cost: merging shard sketch: %w", err)
				}
			}
			if sh.virtual > point.VirtualTime {
				point.VirtualTime = sh.virtual
			}
			app.Launched += sh.appLaunched
			app.Completed += sh.appCompleted
			app.Failed += sh.appFailed
			app.Usage.Add(sh.appUsage)
			if sh.appSk != nil && sh.appSk.Count() > 0 {
				if err := appSk.Merge(sh.appSk); err != nil {
					return nil, fmt.Errorf("cost: merging app sketch: %w", err)
				}
			}
		}
		if served := point.ColdServed + point.WarmServed; served > 0 {
			point.ColdRate = float64(point.ColdServed) / float64(served)
		}
		if point.sketch.Count() > 0 {
			point.Latency = point.sketch.Summarize()
		}
		if opts.Workflow != "" {
			app.Topology = opts.Workflow
			if appSk.Count() > 0 {
				app.MakespanP50 = appSk.Quantile(0.50)
				app.MakespanP99 = appSk.Quantile(0.99)
			}
			point.App = &app
		}
		for _, plan := range opts.Plans {
			cell := CostPlanPoint{
				Plan: plan.Name,
				Cost: plan.Price(point.Usage),
				P99:  point.Latency.P99,
			}
			cell.CostPerMReq = econ.PerMillionRequests(cell.Cost.Total, point.Usage.Requests)
			if point.App != nil && point.App.Completed > 0 {
				cell.AppTotal = plan.Price(point.App.Usage).Total
				cell.AppPerKRuns = cell.AppTotal / float64(point.App.Completed) * 1e3
			}
			point.Plans = append(point.Plans, cell)
		}
		res.Points = append(res.Points, point)
	}
	markCostPareto(res.Points, len(opts.Plans))
	return res, nil
}

// markCostPareto flags, within each plan, the policies not dominated on
// minimizing (CostPerMReq, P99).
func markCostPareto(points []CostPolicyPoint, plans int) {
	for pj := 0; pj < plans; pj++ {
		for i := range points {
			a := &points[i].Plans[pj]
			dominated := false
			for j := range points {
				if j == i {
					continue
				}
				b := &points[j].Plans[pj]
				if b.CostPerMReq <= a.CostPerMReq && b.P99 <= a.P99 &&
					(b.CostPerMReq < a.CostPerMReq || b.P99 < a.P99) {
					dominated = true
					break
				}
			}
			a.Pareto = !dominated
		}
	}
}

// runCostShard replays this shard's slice of the population under one
// control-plane policy. The shard seed ignores the policy index on purpose:
// every policy sees identical arrivals and execution draws, isolating the
// control plane as the only difference between frontier points.
func runCostShard(opts CostOptions, pop []tenantSpec, pol CostPolicy, shardIdx int) (*costShard, error) {
	cfg, err := providers.Get(opts.Provider)
	if err != nil {
		return nil, err
	}
	if pol.Autoscaler != nil {
		as := *pol.Autoscaler
		cfg.Autoscaler = &as
		cfg.ResumeDelay = dist.Constant(opts.ResumeDelay)
	} else {
		cfg.KeepAlive = cloud.KeepAlivePolicy{Fixed: pol.KeepAlive}
	}
	cfg.KeepAliveSlack = opts.SlackTick

	out := &costShard{sk: sketch.New(opts.Alpha)}
	e, err := newEnvWithConfig(cfg, dist.ShardSeed(opts.Seed, shardIdx))
	if err != nil {
		return nil, fmt.Errorf("cost shard %d: %w", shardIdx, err)
	}
	defer e.close()
	c := e.cloud
	c.SetEngineMode(opts.Engine)
	eng := e.eng

	// Tenant arrival/execution randomness reuses the tenants experiment's
	// stream names, so a cost shard replays byte-identical arrivals to a
	// tenants shard at the same seed.
	streams := dist.NewStreams(dist.ShardSeed(opts.Seed, shardIdx))
	noopDone := func(*cloud.Response, error) {}
	horizon := opts.Duration

	type tenantRun struct {
		name   string
		sk     *sketch.Sketch
		issued uint64
	}
	var runs []*tenantRun
	for t := shardIdx; t < len(pop); t += opts.Shards {
		spec := pop[t]
		name := spec.rec.Function
		if err := c.Deploy(cloud.FunctionSpec{
			Name:         name,
			Runtime:      cloud.RuntimePython,
			Method:       cloud.DeployZIP,
			MaxInstances: opts.MaxConcurrency,
		}); err != nil {
			return nil, fmt.Errorf("cost shard %d: %w", shardIdx, err)
		}
		execDist, err := azuretrace.Synthesize(spec.rec)
		if err != nil {
			return nil, fmt.Errorf("cost shard %d: %w", shardIdx, err)
		}
		tr := &tenantRun{name: name, sk: sketch.New(opts.Alpha)}
		if err := c.SetFunctionRecorder(name, tr.sk); err != nil {
			return nil, fmt.Errorf("cost shard %d: %w", shardIdx, err)
		}
		runs = append(runs, tr)

		arrRNG := streams.Stream("tenants/arr/" + name)
		execRNG := streams.Stream("tenants/exec/" + name)
		mean := float64(spec.meanIAT)
		var arrive func()
		arrive = func() {
			tr.issued++
			c.InvokeAsync(&cloud.Request{Fn: name, ExecTime: execDist.Sample(execRNG)}, noopDone)
			if next := time.Duration(arrRNG.ExpFloat64() * mean); eng.Now()+next < horizon {
				eng.CallAfter(next, arrive)
			}
		}
		if first := time.Duration(arrRNG.ExpFloat64() * mean); first < horizon {
			eng.CallAfter(first, arrive)
		}
	}

	// The optional workflow app shares the provider with the tenant
	// population: its nodes are ordinary functions under the same control
	// plane, so its bill reflects the policy's suspend/evict behavior.
	var dag *workflow.DAG
	var ex *workflow.Exec
	if opts.Workflow != "" {
		dag, err = workflow.Preset(opts.Workflow, workflow.PresetSpec{
			Transfer:     workflow.TransferInline,
			PayloadBytes: 4 << 10,
		})
		if err != nil {
			return nil, fmt.Errorf("cost shard %d: %w", shardIdx, err)
		}
		for _, node := range dag.Nodes {
			if err := c.Deploy(cloud.FunctionSpec{
				Name:     node.Name,
				Runtime:  cloud.RuntimePython,
				Method:   cloud.DeployZIP,
				ExecTime: opts.AppExec,
			}); err != nil {
				return nil, fmt.Errorf("cost shard %d: %w", shardIdx, err)
			}
		}
		ex, err = workflow.New(workflow.Config{Cloud: c, DAG: dag})
		if err != nil {
			return nil, fmt.Errorf("cost shard %d: %w", shardIdx, err)
		}
		out.appSk = sketch.New(opts.Alpha)
		n := shardInvocations(opts.Apps, opts.Shards, shardIdx)
		out.appLaunched = n
		if n > 0 {
			runOne := func(p *des.Proc) {
				res, err := ex.Run(p)
				if err != nil {
					out.appFailed++
					return
				}
				out.appCompleted++
				out.appSk.Add(res.Makespan)
			}
			eng.Spawn("cost/app-arrivals", func(p *des.Proc) {
				for i := uint64(0); i < n; i++ {
					eng.Spawn("cost/app", runOne)
					if i+1 < n {
						p.Sleep(opts.AppIAT)
					}
				}
			})
		}
	}

	// Drain to quiescence: in-flight work completes, idle instances expire
	// or suspend, and the autoscaler tick self-disarms.
	eng.Run(0)
	out.virtual = eng.Now()

	var tenantSum econ.Usage
	for _, tr := range runs {
		tm, ok := c.FunctionMetrics(tr.name)
		if !ok {
			return nil, fmt.Errorf("cost shard %d: %s vanished", shardIdx, tr.name)
		}
		if tm.Invocations != tr.issued {
			return nil, fmt.Errorf("cost shard %d: %s conservation violated: issued=%d admitted=%d",
				shardIdx, tr.name, tr.issued, tm.Invocations)
		}
		out.inv += tm.Invocations
		out.cold += tm.ColdServed
		out.warm += tm.WarmServed
		out.errs += tm.Errors
		out.instSec += tm.InstanceSeconds
		if tr.sk.Count() > 0 {
			if err := out.sk.Merge(tr.sk); err != nil {
				return nil, fmt.Errorf("cost shard %d: %w", shardIdx, err)
			}
		}
		u, ok := c.FunctionUsage(tr.name)
		if !ok {
			return nil, fmt.Errorf("cost shard %d: %s has no usage", shardIdx, tr.name)
		}
		tenantSum.Add(u)
	}
	if dag != nil {
		for _, node := range dag.Nodes {
			u, ok := c.FunctionUsage(node.Name)
			if !ok {
				return nil, fmt.Errorf("cost shard %d: app node %s has no usage", shardIdx, node.Name)
			}
			out.appUsage.Add(u)
		}
		tenantSum.Add(out.appUsage)
	}
	out.usage = c.Usage()
	// Billing conservation, live in the experiment: per-tenant usage must
	// sum to the fleet meter (identical adds land in both), up to float
	// association noise.
	if err := usageConserved(tenantSum, out.usage); err != nil {
		return nil, fmt.Errorf("cost shard %d: %w", shardIdx, err)
	}
	m := c.Metrics()
	out.expirations = m.Expirations
	out.suspends = m.Suspends
	out.resumes = m.Resumes
	return out, nil
}

// usageConserved checks that per-tenant usage sums to the fleet total.
func usageConserved(sum, fleet econ.Usage) error {
	if sum.Requests != fleet.Requests {
		return fmt.Errorf("cost: request conservation violated: tenants=%d fleet=%d", sum.Requests, fleet.Requests)
	}
	close := func(a, b float64) bool {
		diff := math.Abs(a - b)
		return diff <= 1e-6*math.Max(math.Abs(a), math.Abs(b))+1e-12
	}
	if !close(sum.BusyGBms, fleet.BusyGBms) ||
		!close(sum.IdleGBms, fleet.IdleGBms) ||
		!close(sum.SuspendedGBms, fleet.SuspendedGBms) {
		return fmt.Errorf("cost: usage conservation violated: tenants=%+v fleet=%+v", sum, fleet)
	}
	return nil
}

// WriteCostReport renders the sweep as a table: one row per (policy, plan)
// cell, Pareto-optimal cells starred within their plan.
func WriteCostReport(w io.Writer, res *CostResult) {
	fmt.Fprintf(w, "cost sweep: provider=%s tenants=%d duration=%v shards=%d seed=%d",
		res.Provider, res.Tenants, res.Duration, res.Shards, res.Seed)
	if res.Workflow != "" {
		fmt.Fprintf(w, " workflow=%s", res.Workflow)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-16s %-12s %11s %8s %8s %8s %12s %11s %10s %7s\n",
		"policy", "plan", "requests", "cold%", "suspends", "resumes", "total$", "$/Mreq", "p99", "pareto")
	for _, p := range res.Points {
		for _, cell := range p.Plans {
			pareto := ""
			if cell.Pareto {
				pareto = "*"
			}
			fmt.Fprintf(w, "%-16s %-12s %11d %7.3f%% %8d %8d %12.6f %11.4f %10v %7s\n",
				p.Policy, cell.Plan, p.Usage.Requests, p.ColdRate*100, p.Suspends, p.Resumes,
				cell.Cost.Total, cell.CostPerMReq, cell.P99.Round(time.Millisecond), pareto)
		}
	}
	if res.Workflow != "" {
		fmt.Fprintf(w, "\nworkflow app (%s) cost per thousand runs:\n", res.Workflow)
		fmt.Fprintf(w, "%-16s %-12s %9s %8s %12s %12s %10s\n",
			"policy", "plan", "completed", "failed", "app-total$", "$/Kruns", "mk-p99")
		for _, p := range res.Points {
			if p.App == nil {
				continue
			}
			for _, cell := range p.Plans {
				fmt.Fprintf(w, "%-16s %-12s %9d %8d %12.6f %12.6f %10v\n",
					p.Policy, cell.Plan, p.App.Completed, p.App.Failed,
					cell.AppTotal, cell.AppPerKRuns, p.App.MakespanP99.Round(time.Millisecond))
			}
		}
	}
}

// WriteCostJSON writes the sweep as indented JSON.
func WriteCostJSON(w io.Writer, res *CostResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// WriteCostCSV writes one row per (policy, plan) cell.
func WriteCostCSV(w io.Writer, res *CostResult) error {
	if _, err := fmt.Fprintln(w, "policy,plan,requests,cold_rate,errors,suspends,resumes,busy_gbms,idle_gbms,suspended_gbms,total_usd,usd_per_mreq,p99_ms,pareto,app_total_usd,app_usd_per_k_runs"); err != nil {
		return err
	}
	for _, p := range res.Points {
		for _, cell := range p.Plans {
			pareto := 0
			if cell.Pareto {
				pareto = 1
			}
			if _, err := fmt.Fprintf(w, "%s,%s,%d,%.6f,%d,%d,%d,%.3f,%.3f,%.3f,%.8f,%.6f,%.3f,%d,%.8f,%.8f\n",
				p.Policy, cell.Plan, p.Usage.Requests, p.ColdRate, p.Errors, p.Suspends, p.Resumes,
				p.Usage.BusyGBms, p.Usage.IdleGBms, p.Usage.SuspendedGBms,
				cell.Cost.Total, cell.CostPerMReq,
				float64(cell.P99)/float64(time.Millisecond), pareto,
				cell.AppTotal, cell.AppPerKRuns); err != nil {
				return err
			}
		}
	}
	return nil
}
