package results

import (
	"math"
	"path/filepath"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/stats"
)

func TestFromFaultRunRoundTrip(t *testing.T) {
	lats := stats.NewSample(3)
	for _, d := range []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond} {
		lats.Add(d)
	}
	out := stats.Outcome{Issued: 5, Succeeded: 3, Retries: 4, Hedges: 1}
	rec := FromFaultRun("faulted", lats, out, 10*time.Second)

	if rec.Errors != 2 {
		t.Fatalf("Errors = %d, want failed count 2", rec.Errors)
	}
	if rec.SuccessRate != 0.6 {
		t.Fatalf("SuccessRate = %v, want 0.6", rec.SuccessRate)
	}
	if math.Abs(rec.GoodputRPS-0.3) > 1e-12 {
		t.Fatalf("GoodputRPS = %v, want 0.3 (3 successes / 10s)", rec.GoodputRPS)
	}

	path := filepath.Join(t.TempDir(), "faulted.json")
	if err := rec.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Outcome == nil || *loaded.Outcome != out {
		t.Fatalf("Outcome = %+v, want %+v", loaded.Outcome, out)
	}
	if loaded.SuccessRate != rec.SuccessRate || loaded.GoodputRPS != rec.GoodputRPS {
		t.Fatalf("headline numbers mangled: %+v", loaded)
	}
	if loaded.Latencies().Len() != 3 {
		t.Fatalf("latency sample mangled: %d values", loaded.Latencies().Len())
	}
}

// TestFromRunResultCarriesOutcome: the plain (non-faulted) constructor now
// also reports the outcome counters, so downstream consumers see a uniform
// shape.
func TestFromRunResultCarriesOutcome(t *testing.T) {
	res := fakeRun(40*time.Millisecond, 100, 1)
	res.Errors = 25
	rec := FromRunResult("baseline", res)
	if rec.Outcome == nil {
		t.Fatal("FromRunResult left Outcome nil")
	}
	if rec.Outcome.Issued != 125 || rec.Outcome.Succeeded != 100 {
		t.Fatalf("Outcome = %+v, want 125 issued / 100 succeeded", rec.Outcome)
	}
	if rec.SuccessRate != 0.8 {
		t.Fatalf("SuccessRate = %v, want 0.8", rec.SuccessRate)
	}
}
