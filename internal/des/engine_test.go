package des

import (
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30*time.Millisecond, func() { order = append(order, 3) })
	e.At(10*time.Millisecond, func() { order = append(order, 1) })
	e.At(20*time.Millisecond, func() { order = append(order, 2) })
	e.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if e.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v, want 30ms", e.Now())
	}
}

func TestSameTimeTieBreak(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Millisecond, func() { order = append(order, i) })
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not in scheduling order: %v", order)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(time.Second, func() { fired++ })
	e.At(3*time.Second, func() { fired++ })
	e.Run(2 * time.Second)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("clock = %v, want 2s", e.Now())
	}
	e.Run(0)
	if fired != 2 {
		t.Fatalf("fired = %d after drain, want 2", fired)
	}
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	timer := e.At(time.Second, func() { fired = true })
	if !timer.Cancel() {
		t.Fatal("first cancel should succeed")
	}
	if timer.Cancel() {
		t.Fatal("second cancel should report false")
	}
	e.Run(0)
	if fired {
		t.Fatal("canceled timer fired")
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var wake Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(42 * time.Millisecond)
		wake = p.Now()
	})
	e.Run(0)
	if wake != 42*time.Millisecond {
		t.Fatalf("woke at %v, want 42ms", wake)
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.Spawn("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(10 * time.Millisecond)
		trace = append(trace, "a10")
		p.Sleep(20 * time.Millisecond)
		trace = append(trace, "a30")
	})
	e.Spawn("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(15 * time.Millisecond)
		trace = append(trace, "b15")
	})
	e.Run(0)
	want := []string{"a0", "b0", "a10", "b15", "a30"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestSignalBroadcast(t *testing.T) {
	e := NewEngine()
	sig := NewSignal(e)
	var woke []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			p.Wait(sig)
			woke = append(woke, name)
		})
	}
	e.Spawn("firer", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		sig.Fire()
	})
	e.Run(0)
	if len(woke) != 3 {
		t.Fatalf("woke = %v, want all three waiters", woke)
	}
	// Waiting on an already-fired signal returns immediately.
	late := false
	e.Spawn("late", func(p *Proc) {
		p.Wait(sig)
		late = true
	})
	e.Run(0)
	if !late {
		t.Fatal("late waiter on fired signal blocked")
	}
}

func TestResourceFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Spawn("p", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Millisecond) // stagger arrival
			p.Acquire(r)
			order = append(order, i)
			p.Sleep(10 * time.Millisecond)
			r.Release()
		})
	}
	e.Run(0)
	if len(order) != 5 {
		t.Fatalf("only %d acquisitions", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("non-FIFO grant order: %v", order)
		}
	}
	if r.InUse() != 0 {
		t.Fatalf("resource leaked: inUse=%d", r.InUse())
	}
	if r.MaxQueueLen() == 0 {
		t.Fatal("expected queue growth under contention")
	}
}

func TestResourceCapacity(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 3)
	var concurrent, peak int
	for i := 0; i < 10; i++ {
		e.Spawn("p", func(p *Proc) {
			p.Acquire(r)
			concurrent++
			if concurrent > peak {
				peak = concurrent
			}
			p.Sleep(time.Millisecond)
			concurrent--
			r.Release()
		})
	}
	e.Run(0)
	if peak != 3 {
		t.Fatalf("peak concurrency = %d, want 3", peak)
	}
}

func TestQueueBlockingGet(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e)
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p))
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(time.Millisecond)
			q.Put(i)
		}
	})
	e.Run(0)
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("got = %v", got)
	}
	if _, ok := q.TryGet(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestCloseKillsParkedProcs(t *testing.T) {
	e := NewEngine()
	reached := false
	e.Spawn("stuck", func(p *Proc) {
		sig := NewSignal(e) // never fired
		p.Wait(sig)
		reached = true
	})
	e.Run(0)
	if reached {
		t.Fatal("process should still be parked")
	}
	e.Close()
	if len(e.procs) != 0 {
		t.Fatalf("%d processes leaked after Close", len(e.procs))
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		e := NewEngine()
		defer e.Close()
		rng := rand.New(rand.NewSource(seed))
		r := NewResource(e, 2)
		var order []int
		for i := 0; i < 50; i++ {
			i := i
			delay := time.Duration(rng.Intn(100)) * time.Millisecond
			e.Spawn("p", func(p *Proc) {
				p.Sleep(delay)
				p.Acquire(r)
				order = append(order, i)
				p.Sleep(time.Duration(rng.Intn(5)) * time.Millisecond)
				r.Release()
			})
		}
		e.Run(0)
		return order
	}
	a, b := run(7), run(7)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("incomplete runs: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic ordering at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestInjectRealTime(t *testing.T) {
	e := NewRealTimeEngine(1000) // 1000x compressed
	stop := make(chan struct{})
	done := make(chan Time, 1)
	go e.RunRealTime(stop)
	e.Inject(func() {
		e.Spawn("worker", func(p *Proc) {
			p.Sleep(500 * time.Millisecond) // 0.5ms wall
			done <- p.Now()
		})
	})
	select {
	case at := <-done:
		if at < 500*time.Millisecond {
			t.Fatalf("woke at virtual %v, want >= 500ms", at)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("real-time engine did not service injected work")
	}
	close(stop)
}

// Property: for any set of event times, the engine fires them in sorted order.
func TestQuickEventOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine()
		var fired []time.Duration
		for _, r := range raw {
			at := time.Duration(r) * time.Microsecond
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run(0)
		if len(fired) != len(raw) {
			return false
		}
		sorted := make([]time.Duration, len(raw))
		for i, r := range raw {
			sorted[i] = time.Duration(r) * time.Microsecond
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range fired {
			if fired[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a resource never exceeds its capacity and always drains.
func TestQuickResourceInvariant(t *testing.T) {
	f := func(capRaw uint8, delays []uint8) bool {
		capacity := int(capRaw%8) + 1
		e := NewEngine()
		defer e.Close()
		r := NewResource(e, capacity)
		ok := true
		for _, d := range delays {
			d := time.Duration(d) * time.Millisecond
			e.Spawn("p", func(p *Proc) {
				p.Sleep(d)
				p.Acquire(r)
				if r.InUse() > capacity {
					ok = false
				}
				p.Sleep(time.Millisecond)
				r.Release()
			})
		}
		e.Run(0)
		return ok && r.InUse() == 0 && r.QueueLen() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWaitTimeoutExpires(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	sig := NewSignal(e)
	var fired bool
	var at Time
	e.Spawn("waiter", func(p *Proc) {
		fired = p.WaitTimeout(sig, 100*time.Millisecond)
		at = p.Now()
	})
	e.Run(0)
	if fired {
		t.Fatal("unfired signal reported as fired")
	}
	if at != 100*time.Millisecond {
		t.Fatalf("woke at %v, want 100ms", at)
	}
}

func TestWaitTimeoutSignalWins(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	sig := NewSignal(e)
	var fired bool
	e.Spawn("waiter", func(p *Proc) {
		fired = p.WaitTimeout(sig, time.Second)
		if p.Now() != 50*time.Millisecond {
			t.Errorf("woke at %v", p.Now())
		}
		// The canceled timer must not wake us again: sleep past it.
		p.Sleep(5 * time.Second)
	})
	e.At(50*time.Millisecond, func() { sig.Fire() })
	e.Run(0)
	if !fired {
		t.Fatal("fired signal reported as timeout")
	}
}

func TestWaitTimeoutAlreadyFired(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	sig := NewSignal(e)
	sig.Fire()
	ok := false
	e.Spawn("waiter", func(p *Proc) {
		ok = p.WaitTimeout(sig, time.Second)
	})
	e.Run(0)
	if !ok {
		t.Fatal("pre-fired signal should return immediately")
	}
}

func TestWaitTimeoutSimultaneous(t *testing.T) {
	// Signal fire and timeout land on the same instant: the process must
	// resume exactly once regardless of which event pops first.
	for _, fireFirst := range []bool{true, false} {
		e := NewEngine()
		sig := NewSignal(e)
		wakes := 0
		if fireFirst {
			e.At(100*time.Millisecond, func() { sig.Fire() })
		}
		e.Spawn("waiter", func(p *Proc) {
			p.WaitTimeout(sig, 100*time.Millisecond)
			wakes++
			p.Sleep(10 * time.Second) // catch any stray double-resume
			wakes++
		})
		if !fireFirst {
			e.At(100*time.Millisecond, func() { sig.Fire() })
		}
		e.Run(0)
		if wakes != 2 {
			t.Fatalf("fireFirst=%v: wakes=%d, want 2 (exactly one resume + sleep)", fireFirst, wakes)
		}
		e.Close()
	}
}

func TestWaitTimeoutMixedWaiters(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	sig := NewSignal(e)
	results := map[string]bool{}
	e.Spawn("fast-timeout", func(p *Proc) {
		results["fast"] = p.WaitTimeout(sig, 10*time.Millisecond)
	})
	e.Spawn("slow-timeout", func(p *Proc) {
		results["slow"] = p.WaitTimeout(sig, time.Minute)
	})
	e.Spawn("plain", func(p *Proc) {
		p.Wait(sig)
		results["plain"] = true
	})
	e.At(time.Second, func() { sig.Fire() })
	e.Run(0)
	if results["fast"] {
		t.Error("fast waiter should have timed out")
	}
	if !results["slow"] || !results["plain"] {
		t.Errorf("late waiters should see the fire: %+v", results)
	}
}

func TestCloseReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		e := NewEngine()
		sig := NewSignal(e) // never fired: procs park forever
		for i := 0; i < 100; i++ {
			e.Spawn("parked", func(p *Proc) {
				p.Wait(sig)
			})
		}
		e.Run(0)
		e.Close()
	}
	// Give exiting goroutines a moment to unwind.
	for i := 0; i < 100 && runtime.NumGoroutine() > before+10; i++ {
		time.Sleep(time.Millisecond)
	}
	after := runtime.NumGoroutine()
	if after > before+10 {
		t.Fatalf("goroutines leaked: %d -> %d", before, after)
	}
}

func TestAfterNegativeClampsToNow(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	var at Time
	e.Spawn("p", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		e.After(-5*time.Millisecond, func() { at = e.Now() })
	})
	e.Run(0)
	if at != 10*time.Millisecond {
		t.Fatalf("negative After fired at %v, want clamped to now", at)
	}
}

func TestPendingEventsAndAccessors(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	e.At(time.Second, func() {})
	e.At(2*time.Second, func() {})
	if e.PendingEvents() != 2 {
		t.Fatalf("pending = %d", e.PendingEvents())
	}
	p := e.Spawn("named", func(p *Proc) {
		if p.Name() != "named" || p.Engine() != e {
			t.Error("accessors wrong")
		}
		p.Yield()
	})
	_ = p
	e.Run(0)
	if e.PendingEvents() != 0 {
		t.Fatalf("pending after run = %d", e.PendingEvents())
	}
}
