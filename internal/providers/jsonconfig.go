package providers

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/stellar-repro/stellar/internal/blobstore"
	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/dist"
	"github.com/stellar-repro/stellar/internal/faults"
)

// This file lets users define provider profiles in JSON, so new clouds (or
// what-if variants of the built-ins) can be modeled without recompiling:
//
//	stellar bench -provider-file myCloud.json ...
//
// Distributions use a small tagged schema:
//
//	{"type": "constant", "value": "5ms"}
//	{"type": "uniform", "min": "1m", "max": "10m"}
//	{"type": "exponential", "mean": "100ms"}
//	{"type": "lognormal", "median": "18ms", "p99": "74ms"}
//	{"type": "mixture", "components": [
//	    {"weight": 0.97, "dist": {...}}, {"weight": 0.03, "dist": {...}}]}

// JSONDuration parses "3s"-style strings (or integer nanoseconds).
type JSONDuration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *JSONDuration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		parsed, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("providers: bad duration %q: %w", s, err)
		}
		*d = JSONDuration(parsed)
		return nil
	}
	var n int64
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("providers: duration must be a string or integer: %s", data)
	}
	*d = JSONDuration(n)
	return nil
}

// Std converts to time.Duration.
func (d JSONDuration) Std() time.Duration { return time.Duration(d) }

// DistSpec is the JSON form of a latency distribution.
type DistSpec struct {
	Type   string       `json:"type"`
	Value  JSONDuration `json:"value,omitempty"`  // constant
	Min    JSONDuration `json:"min,omitempty"`    // uniform
	Max    JSONDuration `json:"max,omitempty"`    // uniform
	Mean   JSONDuration `json:"mean,omitempty"`   // exponential
	Median JSONDuration `json:"median,omitempty"` // lognormal
	P99    JSONDuration `json:"p99,omitempty"`    // lognormal
	// Mixture components.
	Components []MixtureComponentSpec `json:"components,omitempty"`
}

// MixtureComponentSpec is one weighted branch of a mixture.
type MixtureComponentSpec struct {
	Weight float64  `json:"weight"`
	Dist   DistSpec `json:"dist"`
}

// ToDist builds the distribution.
func (s *DistSpec) ToDist() (dist.Dist, error) {
	if s == nil {
		return nil, nil
	}
	switch s.Type {
	case "":
		return nil, nil
	case "constant":
		return dist.Constant(s.Value.Std()), nil
	case "uniform":
		if s.Max < s.Min {
			return nil, fmt.Errorf("providers: uniform max %v < min %v", s.Max.Std(), s.Min.Std())
		}
		return dist.Uniform{Min: s.Min.Std(), Max: s.Max.Std()}, nil
	case "exponential":
		if s.Mean <= 0 {
			return nil, fmt.Errorf("providers: exponential needs a positive mean")
		}
		return dist.Exponential{Mean: s.Mean.Std()}, nil
	case "lognormal":
		if s.Median <= 0 || s.P99 < s.Median {
			return nil, fmt.Errorf("providers: lognormal needs 0 < median <= p99 (got %v, %v)",
				s.Median.Std(), s.P99.Std())
		}
		return dist.LogNormalMedTail(s.Median.Std(), s.P99.Std()), nil
	case "mixture":
		if len(s.Components) == 0 {
			return nil, fmt.Errorf("providers: mixture needs components")
		}
		comps := make([]dist.Component, 0, len(s.Components))
		for i, c := range s.Components {
			if c.Weight <= 0 {
				return nil, fmt.Errorf("providers: mixture component %d needs a positive weight", i)
			}
			d, err := c.Dist.ToDist()
			if err != nil {
				return nil, err
			}
			if d == nil {
				return nil, fmt.Errorf("providers: mixture component %d has no distribution", i)
			}
			comps = append(comps, dist.Component{Weight: c.Weight, D: d})
		}
		return dist.NewMixture(comps...), nil
	default:
		return nil, fmt.Errorf("providers: unknown distribution type %q", s.Type)
	}
}

// StoreSpec is the JSON form of a blob store.
type StoreSpec struct {
	Name                 string       `json:"name"`
	GetLatency           *DistSpec    `json:"get_latency,omitempty"`
	PutLatency           *DistSpec    `json:"put_latency,omitempty"`
	GetBandwidthBps      float64      `json:"get_bandwidth_bps,omitempty"`
	PutBandwidthBps      float64      `json:"put_bandwidth_bps,omitempty"`
	SmallObjectBytes     int64        `json:"small_object_bytes,omitempty"`
	SmallGetBandwidthBps float64      `json:"small_get_bandwidth_bps,omitempty"`
	BandwidthJitterPct   float64      `json:"bandwidth_jitter_pct,omitempty"`
	MissCongestionUnit   JSONDuration `json:"miss_congestion_unit,omitempty"`
	Cache                *CacheSpec   `json:"cache,omitempty"`
}

// CacheSpec is the JSON form of a store cache policy.
type CacheSpec struct {
	ActivationCount  int          `json:"activation_count"`
	ActivationWindow JSONDuration `json:"activation_window"`
	TTL              JSONDuration `json:"ttl"`
	HitLatency       *DistSpec    `json:"hit_latency,omitempty"`
	HitBandwidthBps  float64      `json:"hit_bandwidth_bps,omitempty"`
}

func (s *StoreSpec) toConfig() (blobstore.Config, error) {
	if s == nil {
		return blobstore.Config{}, nil
	}
	cfg := blobstore.Config{
		Name:                 s.Name,
		GetBandwidthBps:      s.GetBandwidthBps,
		PutBandwidthBps:      s.PutBandwidthBps,
		SmallObjectBytes:     s.SmallObjectBytes,
		SmallGetBandwidthBps: s.SmallGetBandwidthBps,
		BandwidthJitterPct:   s.BandwidthJitterPct,
		MissCongestionUnit:   s.MissCongestionUnit.Std(),
	}
	var err error
	if cfg.GetLatency, err = s.GetLatency.ToDist(); err != nil {
		return cfg, err
	}
	if cfg.PutLatency, err = s.PutLatency.ToDist(); err != nil {
		return cfg, err
	}
	if s.Cache != nil {
		cfg.Cache = blobstore.CacheConfig{
			Enabled:          true,
			ActivationCount:  s.Cache.ActivationCount,
			ActivationWindow: s.Cache.ActivationWindow.Std(),
			TTL:              s.Cache.TTL.Std(),
			HitBandwidthBps:  s.Cache.HitBandwidthBps,
		}
		if cfg.Cache.HitLatency, err = s.Cache.HitLatency.ToDist(); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

// PolicySpec is the JSON form of the scheduling policy.
type PolicySpec struct {
	Kind                string       `json:"kind"`
	MaxQueuePerInstance int          `json:"max_queue_per_instance,omitempty"`
	InitialTokens       float64      `json:"initial_tokens,omitempty"`
	MaxTokens           float64      `json:"max_tokens,omitempty"`
	TokensPerSec        float64      `json:"tokens_per_sec,omitempty"`
	EvalInterval        JSONDuration `json:"eval_interval,omitempty"`
}

// ConfigSpec is the JSON form of a full provider profile. Unset
// distributions default to zero delay, matching cloud.Config semantics.
type ConfigSpec struct {
	Name           string       `json:"name"`
	PropagationRTT JSONDuration `json:"propagation_rtt,omitempty"`

	FrontendDelay *DistSpec `json:"frontend_delay,omitempty"`
	ResponseDelay *DistSpec `json:"response_delay,omitempty"`
	InternalDelay *DistSpec `json:"internal_delay,omitempty"`
	RoutingDelay  *DistSpec `json:"routing_delay,omitempty"`
	WarmOverhead  *DistSpec `json:"warm_overhead,omitempty"`

	CongestionThreshold     int          `json:"congestion_threshold,omitempty"`
	CongestionUnit          JSONDuration `json:"congestion_unit,omitempty"`
	CongestionExponent      float64      `json:"congestion_exponent,omitempty"`
	CongestionCap           JSONDuration `json:"congestion_cap,omitempty"`
	SlowPathProbPerInflight float64      `json:"slow_path_prob_per_inflight,omitempty"`
	SlowPathMaxProb         float64      `json:"slow_path_max_prob,omitempty"`
	SlowPathDelay           *DistSpec    `json:"slow_path_delay,omitempty"`

	SchedulerCapacity int          `json:"scheduler_capacity"`
	PlacementDelay    *DistSpec    `json:"placement_delay,omitempty"`
	Policy            PolicySpec   `json:"policy"`
	QueueHandoffDelay *DistSpec    `json:"queue_handoff_delay,omitempty"`
	QueueTimeout      JSONDuration `json:"queue_timeout,omitempty"`

	SandboxBoot     *DistSpec            `json:"sandbox_boot,omitempty"`
	WarmGenericPool bool                 `json:"warm_generic_pool,omitempty"`
	PooledInit      *DistSpec            `json:"pooled_init,omitempty"`
	RuntimeInit     map[string]*DistSpec `json:"runtime_init,omitempty"`

	ImageStore   *StoreSpec `json:"image_store,omitempty"`
	PayloadStore *StoreSpec `json:"payload_store,omitempty"`

	InlineLimitBytes   int64   `json:"inline_limit_bytes,omitempty"`
	InlineBandwidthBps float64 `json:"inline_bandwidth_bps,omitempty"`
	InlineJitterPct    float64 `json:"inline_jitter_pct,omitempty"`

	KeepAliveFixed JSONDuration `json:"keep_alive_fixed,omitempty"`
	KeepAliveDist  *DistSpec    `json:"keep_alive_dist,omitempty"`

	Workers        int    `json:"workers"`
	WorkerCapacity int    `json:"worker_capacity,omitempty"`
	Placement      string `json:"placement,omitempty"`

	DefaultMemoryMB   int `json:"default_memory_mb,omitempty"`
	FullSpeedMemoryMB int `json:"full_speed_memory_mb,omitempty"`

	// Faults optionally enables the deterministic fault injector as part
	// of the provider profile itself (internal/faults).
	Faults *faults.InjectSpec `json:"faults,omitempty"`
}

// ToConfig builds and validates the provider profile.
func (s *ConfigSpec) ToConfig() (cloud.Config, error) {
	cfg := cloud.Config{
		Name:                    s.Name,
		PropagationRTT:          s.PropagationRTT.Std(),
		CongestionThreshold:     s.CongestionThreshold,
		CongestionUnit:          s.CongestionUnit.Std(),
		CongestionExponent:      s.CongestionExponent,
		CongestionCap:           s.CongestionCap.Std(),
		SlowPathProbPerInflight: s.SlowPathProbPerInflight,
		SlowPathMaxProb:         s.SlowPathMaxProb,
		SchedulerCapacity:       s.SchedulerCapacity,
		QueueTimeout:            s.QueueTimeout.Std(),
		WarmGenericPool:         s.WarmGenericPool,
		InlineLimitBytes:        s.InlineLimitBytes,
		InlineBandwidthBps:      s.InlineBandwidthBps,
		InlineJitterPct:         s.InlineJitterPct,
		Workers:                 s.Workers,
		WorkerCapacity:          s.WorkerCapacity,
		Placement:               cloud.PlacementStrategy(s.Placement),
		DefaultMemoryMB:         s.DefaultMemoryMB,
		FullSpeedMemoryMB:       s.FullSpeedMemoryMB,
		Policy: cloud.PolicyConfig{
			Kind:                cloud.PolicyKind(s.Policy.Kind),
			MaxQueuePerInstance: s.Policy.MaxQueuePerInstance,
			InitialTokens:       s.Policy.InitialTokens,
			MaxTokens:           s.Policy.MaxTokens,
			TokensPerSec:        s.Policy.TokensPerSec,
			EvalInterval:        s.Policy.EvalInterval.Std(),
		},
		KeepAlive: cloud.KeepAlivePolicy{Fixed: s.KeepAliveFixed.Std()},
	}
	var err error
	assign := func(dst *dist.Dist, spec *DistSpec) {
		if err != nil {
			return
		}
		var d dist.Dist
		if d, err = spec.ToDist(); err == nil && d != nil {
			*dst = d
		}
	}
	assign(&cfg.FrontendDelay, s.FrontendDelay)
	assign(&cfg.ResponseDelay, s.ResponseDelay)
	assign(&cfg.InternalDelay, s.InternalDelay)
	assign(&cfg.RoutingDelay, s.RoutingDelay)
	assign(&cfg.WarmOverhead, s.WarmOverhead)
	assign(&cfg.SlowPathDelay, s.SlowPathDelay)
	assign(&cfg.PlacementDelay, s.PlacementDelay)
	assign(&cfg.QueueHandoffDelay, s.QueueHandoffDelay)
	assign(&cfg.SandboxBoot, s.SandboxBoot)
	assign(&cfg.PooledInit, s.PooledInit)
	assign(&cfg.KeepAlive.Dist, s.KeepAliveDist)
	if err != nil {
		return cfg, err
	}
	if len(s.RuntimeInit) > 0 {
		cfg.RuntimeInit = make(map[string]dist.Dist, len(s.RuntimeInit))
		for key, spec := range s.RuntimeInit {
			d, derr := spec.ToDist()
			if derr != nil {
				return cfg, fmt.Errorf("providers: runtime_init[%s]: %w", key, derr)
			}
			cfg.RuntimeInit[key] = d
		}
	}
	if s.ImageStore != nil {
		if cfg.ImageStore, err = s.ImageStore.toConfig(); err != nil {
			return cfg, err
		}
	}
	if s.PayloadStore != nil {
		if cfg.PayloadStore, err = s.PayloadStore.toConfig(); err != nil {
			return cfg, err
		}
	}
	if s.Faults != nil {
		fc, ferr := s.Faults.ToConfig()
		if ferr != nil {
			return cfg, fmt.Errorf("providers: faults: %w", ferr)
		}
		cfg.Inject = &fc
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// LoadConfigFile parses a JSON provider profile.
func LoadConfigFile(path string) (cloud.Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return cloud.Config{}, fmt.Errorf("providers: read profile: %w", err)
	}
	var spec ConfigSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return cloud.Config{}, fmt.Errorf("providers: parse profile: %w", err)
	}
	return spec.ToConfig()
}

// RegisterFile loads a JSON profile and registers it under its name,
// returning the name.
func RegisterFile(path string) (string, error) {
	cfg, err := LoadConfigFile(path)
	if err != nil {
		return "", err
	}
	Register(cfg.Name, func() cloud.Config {
		loaded, _ := LoadConfigFile(path)
		return loaded
	})
	return cfg.Name, nil
}
