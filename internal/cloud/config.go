// Package cloud simulates a serverless (FaaS) cloud infrastructure in
// virtual time, implementing every component of the invocation lifecycle
// described in the STeLLAR paper's §II-B and Fig. 1: a front-end fleet, a
// load balancer, a cluster scheduler, workers with instance managers,
// function instances, and the storage services used for function images and
// inter-function payloads.
//
// Provider differences are expressed as configuration — latency
// distributions, scheduling/queueing policies, storage cache policies, and
// scale-out limits — so that the paper's per-provider behaviors (§VI) emerge
// from the interaction of mechanisms rather than from lookup tables.
package cloud

import (
	"fmt"
	"time"

	"github.com/stellar-repro/stellar/internal/blobstore"
	"github.com/stellar-repro/stellar/internal/dist"
	"github.com/stellar-repro/stellar/internal/econ"
	"github.com/stellar-repro/stellar/internal/faults"
)

// Runtime identifies a function's language runtime.
type Runtime string

// Runtimes studied in the paper (§VI-B3): an interpreted and a compiled one.
const (
	RuntimePython Runtime = "python3"
	RuntimeGo     Runtime = "go1.x"
)

// DeployMethod identifies how a function image is packaged.
type DeployMethod string

// Deployment methods studied in the paper (§VI-B3).
const (
	DeployZIP       DeployMethod = "zip"
	DeployContainer DeployMethod = "container"
)

// TransferKind selects how chained functions move payloads (§VI-C).
type TransferKind string

// Transfer kinds supported by STeLLAR.
const (
	TransferInline  TransferKind = "inline"
	TransferStorage TransferKind = "storage"
)

// ChainSpec makes a function invoke a downstream function before returning,
// passing a payload either inline or via the payload storage service.
type ChainSpec struct {
	// Next is the name of the downstream function (must be deployed).
	Next string
	// Transfer selects the payload transport.
	Transfer TransferKind
	// PayloadBytes is the default payload size; requests may override it.
	PayloadBytes int64
	// Fanout invokes that many parallel copies of the downstream function
	// (scatter-gather); the producer waits for all of them. Zero or one
	// means a plain sequential chain.
	Fanout int
}

// FunctionSpec describes one deployed function.
type FunctionSpec struct {
	// Name is the unique function name (endpoint identity).
	Name string
	// Runtime is the language runtime.
	Runtime Runtime
	// Method is the deployment method.
	Method DeployMethod
	// MemoryMB is the configured instance memory (informational; the paper
	// uses max-memory configs to avoid CPU throttling).
	MemoryMB int
	// BaseImageBytes is the image size before any extra file. Zero selects
	// a realistic default for the runtime/method combination.
	BaseImageBytes int64
	// ExtraImageBytes models STeLLAR's random-content file added to the
	// image to inflate its effective size (§IV).
	ExtraImageBytes int64
	// ExecTime is the default busy-spin duration of the handler.
	ExecTime time.Duration
	// Chain, when non-nil, chains this function to a downstream one.
	Chain *ChainSpec
	// KeepAlive, when non-nil, overrides the provider-wide keep-alive
	// policy for this function's instances — the per-tenant policy knob of
	// multi-tenant replay (Shahrad et al.'s hybrid policies keep idle
	// capacity per application, not per cloud).
	KeepAlive *KeepAlivePolicy
	// MaxInstances, when positive, caps this function's live plus pending
	// instances — a per-tenant concurrency limit (AWS reserved
	// concurrency, Azure maximum scale-out). Requests beyond the cap
	// buffer until a serving instance frees up, regardless of policy.
	MaxInstances int
	// MaxConcurrent, when positive, caps this function's admitted and
	// unfinished external requests: admissions beyond it are rejected
	// immediately with ErrConcurrencyLimit rather than buffered — the
	// hard per-tenant admission limit of the control plane (a 429, not a
	// queue). Unlike MaxInstances it bounds requests, not instances.
	MaxConcurrent int
}

// DefaultBaseImageBytes returns a representative package size for a
// runtime/method combination (compiled Go binaries in a ZIP are small;
// container images carry a filesystem).
func DefaultBaseImageBytes(r Runtime, m DeployMethod) int64 {
	switch {
	case m == DeployContainer:
		return 60 << 20 // language base image layer
	case r == RuntimeGo:
		return 4 << 20
	default:
		return 8 << 20
	}
}

// PolicyKind selects the cluster scheduler's reaction to invocations that
// find no idle instance (§VI-D3).
type PolicyKind string

// Scheduling policies.
const (
	// PolicyNoQueue spawns a dedicated instance for every buffered request;
	// requests never queue behind an executing instance (AWS behavior).
	PolicyNoQueue PolicyKind = "no-queue"
	// PolicyBoundedQueue allows a small number of requests to queue per
	// (live or pending) instance before spawning more (Google behavior).
	PolicyBoundedQueue PolicyKind = "bounded-queue"
	// PolicyRateLimited limits instance creation with a token bucket and
	// queues the remaining requests at whatever instances exist
	// (Azure behavior: a scale controller adds instances gradually).
	PolicyRateLimited PolicyKind = "rate-limited"
)

// PolicyConfig parameterizes the scheduling policy.
type PolicyConfig struct {
	Kind PolicyKind
	// MaxQueuePerInstance bounds requests per live-or-pending instance
	// (bounded-queue and rate-limited policies).
	MaxQueuePerInstance int
	// Token bucket for rate-limited scale-out.
	InitialTokens float64
	MaxTokens     float64
	TokensPerSec  float64
	// EvalInterval is how often the scale controller re-evaluates a
	// function with buffered requests (rate-limited policy).
	EvalInterval time.Duration
}

// FaultConfig injects failures, exercising the retry machinery real
// serverless front ends employ (AWS retries function errors; spawn attempts
// can fail and are repeated by the scheduler). Zero value = no faults.
type FaultConfig struct {
	// CrashProb is the per-invocation probability that the serving
	// instance crashes after executing (the instance is destroyed).
	CrashProb float64
	// SpawnFailureProb is the probability a cold-start attempt fails and
	// the scheduler retries the pipeline from placement.
	SpawnFailureProb float64
	// Retries is how many times the front end re-drives a crashed
	// invocation before surfacing the error.
	Retries int
	// RetryBackoff is slept before each retry.
	RetryBackoff dist.Dist
}

// SnapshotConfig enables snapshot-restore cold starts.
type SnapshotConfig struct {
	// Enabled turns snapshotting on.
	Enabled bool
	// RestoreDelay replaces the boot+fetch+init pipeline when a snapshot
	// exists (REAP restores run in tens of milliseconds).
	RestoreDelay dist.Dist
	// CaptureOverhead is added to the first (snapshot-creating) cold
	// start of each function.
	CaptureOverhead dist.Dist
}

// PlacementStrategy selects the scheduler's worker-choice policy.
type PlacementStrategy string

// Placement strategies.
const (
	// PlacementRoundRobin cycles through workers (the default).
	PlacementRoundRobin PlacementStrategy = "round-robin"
	// PlacementLeastLoaded picks the worker hosting the fewest live
	// instances, balancing occupancy under skewed teardown patterns.
	PlacementLeastLoaded PlacementStrategy = "least-loaded"
)

// KeepAlivePolicy controls how long an idle instance survives.
type KeepAlivePolicy struct {
	// Fixed, when positive, deterministically reaps idle instances after
	// exactly this duration (AWS Lambda's observed 10-minute policy, §V).
	Fixed time.Duration
	// Dist, used when Fixed is zero, samples a random lifetime per idle
	// period (Google/Azure behavior: shutdown likelihood grows with time).
	Dist dist.Dist
}

// RuntimeMethodKey joins a runtime and deployment method for map lookups.
func RuntimeMethodKey(r Runtime, m DeployMethod) string {
	return string(r) + "/" + string(m)
}

// Config is a full provider profile.
type Config struct {
	// Name identifies the provider (e.g., "aws").
	Name string

	// PropagationRTT is the client<->datacenter round trip (the paper's
	// ping measurement: 26/14/32 ms for AWS/Google/Azure from CloudLab).
	PropagationRTT time.Duration

	// FrontendDelay is the external-request admission delay (auth etc.).
	FrontendDelay dist.Dist
	// ResponseDelay is the external response path delay.
	ResponseDelay dist.Dist
	// InternalDelay is the ingress delay for function-to-function calls,
	// which traverse the front-end/load balancer again (§II-B step 9).
	InternalDelay dist.Dist
	// RoutingDelay is the load balancer's routing decision delay.
	RoutingDelay dist.Dist
	// WarmOverhead is the per-invocation instance-side overhead (request
	// relay, runtime dispatch, response serialization).
	WarmOverhead dist.Dist

	// Ingestion congestion: with Q concurrently in-flight requests to a
	// function beyond CongestionThreshold, each request waits an extra
	// CongestionUnit * Q^CongestionExponent (capped at CongestionCap when
	// positive), and with probability min(SlowPathMaxProb,
	// Q*SlowPathProbPerInflight) also takes a slow path (retries,
	// throttling) sampled from SlowPathDelay. An exponent below 1 models
	// a scale-out front-end fleet that absorbs large bursts sublinearly.
	CongestionThreshold     int
	CongestionUnit          time.Duration
	CongestionExponent      float64 // 0 means 1 (linear)
	CongestionCap           time.Duration
	SlowPathProbPerInflight float64
	SlowPathMaxProb         float64
	SlowPathDelay           dist.Dist

	// Cluster scheduler: placement decisions hold one unit of a
	// SchedulerCapacity-wide resource for PlacementDelay, so mass cold
	// starts contend (§VI-D2).
	SchedulerCapacity int
	PlacementDelay    dist.Dist
	// Policy selects the queueing/scale-out behavior.
	Policy PolicyConfig
	// QueueHandoffDelay is the per-request dispatch overhead paid when a
	// queued request is handed a recycled instance (queueing policies
	// only): the scale controller's dequeue-and-dispatch cost, which
	// bounds how fast a few instances can drain a deep queue.
	QueueHandoffDelay dist.Dist
	// QueueTimeout bounds how long a request may sit buffered awaiting an
	// instance before the gateway gives up with an error (API gateways
	// cap this around 29-230s in production; zero disables).
	QueueTimeout time.Duration

	// Cold-start pipeline at the worker's instance manager (§II-B steps
	// 4-7): sandbox boot, image fetch from ImageStore, runtime init.
	SandboxBoot dist.Dist
	// WarmGenericPool models providers that keep pre-booted generic
	// instances, making ZIP runtime init nearly independent of the
	// language runtime (the paper's hypothesis for Obs. 3).
	WarmGenericPool bool
	// PooledInit is the runtime init delay when served from the generic
	// pool (ZIP deployments with WarmGenericPool).
	PooledInit dist.Dist
	// RuntimeInit maps RuntimeMethodKey to the init delay otherwise.
	RuntimeInit map[string]dist.Dist
	// ContainerChunkReads models interpreted runtimes importing modules
	// on demand from a splintered container image: that many extra
	// small reads against the image store per cold start (§VI-B3).
	ContainerChunkReads map[Runtime]int
	// ChunkReadLatency is the per-chunk read latency.
	ChunkReadLatency dist.Dist

	// ImageStore holds function images; PayloadStore holds inter-function
	// payloads (S3 / Cloud Storage).
	ImageStore   blobstore.Config
	PayloadStore blobstore.Config

	// Inline transfers: payloads up to InlineLimitBytes ride inside the
	// invocation request at InlineBandwidthBps (±InlineJitterPct).
	InlineLimitBytes   int64
	InlineBandwidthBps float64
	InlineJitterPct    float64

	// KeepAlive reaps idle instances.
	KeepAlive KeepAlivePolicy
	// Autoscaler, when non-nil, replaces the buffer-driven scale policies
	// and keep-alive reaping with an explicit control plane: a
	// target-concurrency controller (desired = ceil(inflight/target),
	// Knative-KPA shape) that scales up on demand, scales down on windowed
	// ticks, and — with Suspend set — parks surplus instances in the
	// suspended state instead of evicting them. nil (the default) keeps
	// every existing schedule byte-identical.
	Autoscaler *econ.AutoscalerConfig
	// Billing, when non-nil, is the provider's billing plan; Cloud.Bill
	// prices the accumulated usage under it. Usage metering itself is
	// always on (pure arithmetic), so experiments can also price one run
	// under many plans after the fact via Cloud.Usage.
	Billing *econ.BillingConfig
	// ResumeDelay is the suspended→running resume latency, sampled per
	// resume — well below a cold boot (the scale-to-zero literature
	// reports tens to hundreds of ms for snapshot-resident state).
	ResumeDelay dist.Dist
	// KeepAliveSlack, when positive, routes keep-alive expiry timers to
	// the engine's coarse timer wheel at this tick granularity: expiries
	// fire up to one tick late (never early) and arm/cancel in O(1) with
	// zero steady-state allocations — the difference between O(log n) and
	// O(1) per warm hit once hundreds of thousands of idle instances each
	// hold a timer. Zero (the default) keeps expiries on the exact heap,
	// byte-identical to all prior behavior. A lifetime of minutes is
	// semantically unchanged by a slack of, say, one second.
	KeepAliveSlack time.Duration

	// Workers is the number of physical hosts.
	Workers int
	// WorkerCapacity bounds instances per worker; zero means unbounded.
	// When the whole cluster is full, spawns block until capacity frees —
	// the saturation regime a finite cluster hits under extreme bursts.
	WorkerCapacity int
	// Placement selects how the scheduler picks a worker for a new
	// instance: round-robin (default) or least-loaded by live instances.
	Placement PlacementStrategy

	// Faults optionally injects crashes and spawn failures.
	Faults FaultConfig

	// Inject optionally enables the deterministic fault injector
	// (internal/faults): request drops, 429 throttling, storage-fetch
	// timeouts, and additional spawn failures. nil — or a config with no
	// active mode — leaves the invoke hot path byte-identical to a cloud
	// built without it.
	Inject *faults.Config

	// Snapshots optionally enables MicroVM snapshot/restore cold starts
	// (the vHive/REAP line of work the paper's §VIII discusses): after a
	// function's first full cold boot, later instances restore from the
	// captured snapshot instead of booting, fetching the image, and
	// initializing the runtime.
	Snapshots SnapshotConfig

	// DefaultMemoryMB is the instance memory used when a function spec
	// leaves MemoryMB zero — the paper's max-memory single-core
	// configuration (§V): 2GB AWS/Google, 1.5GB Azure.
	DefaultMemoryMB int
	// FullSpeedMemoryMB is the memory size at which an instance gets a
	// full CPU core; providers throttle CPU proportionally below it (§V),
	// stretching busy-spin execution time by FullSpeedMemoryMB/MemoryMB.
	FullSpeedMemoryMB int
}

// Validate reports configuration errors that would make the simulation
// meaningless.
func (c *Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("cloud: config needs a name")
	}
	if c.SchedulerCapacity < 1 {
		return fmt.Errorf("cloud %s: scheduler capacity must be >= 1", c.Name)
	}
	if c.Workers < 1 {
		return fmt.Errorf("cloud %s: need at least one worker", c.Name)
	}
	switch c.Policy.Kind {
	case PolicyNoQueue:
	case PolicyBoundedQueue:
		if c.Policy.MaxQueuePerInstance < 1 {
			return fmt.Errorf("cloud %s: bounded-queue needs MaxQueuePerInstance >= 1", c.Name)
		}
	case PolicyRateLimited:
		if c.Policy.MaxQueuePerInstance < 1 {
			return fmt.Errorf("cloud %s: rate-limited needs MaxQueuePerInstance >= 1", c.Name)
		}
		if c.Policy.TokensPerSec <= 0 {
			return fmt.Errorf("cloud %s: rate-limited needs TokensPerSec > 0", c.Name)
		}
	default:
		return fmt.Errorf("cloud %s: unknown policy %q", c.Name, c.Policy.Kind)
	}
	if c.KeepAlive.Fixed <= 0 && c.KeepAlive.Dist == nil {
		return fmt.Errorf("cloud %s: keep-alive policy unset", c.Name)
	}
	if c.KeepAliveSlack < 0 {
		return fmt.Errorf("cloud %s: negative keep-alive slack", c.Name)
	}
	if c.DefaultMemoryMB < 0 || c.FullSpeedMemoryMB < 0 {
		return fmt.Errorf("cloud %s: negative memory configuration", c.Name)
	}
	switch c.Placement {
	case "", PlacementRoundRobin, PlacementLeastLoaded:
	default:
		return fmt.Errorf("cloud %s: unknown placement strategy %q", c.Name, c.Placement)
	}
	if c.Faults.CrashProb < 0 || c.Faults.CrashProb > 1 ||
		c.Faults.SpawnFailureProb < 0 || c.Faults.SpawnFailureProb >= 1 {
		return fmt.Errorf("cloud %s: fault probabilities out of range", c.Name)
	}
	if c.Faults.Retries < 0 {
		return fmt.Errorf("cloud %s: negative retry count", c.Name)
	}
	if c.WorkerCapacity < 0 {
		return fmt.Errorf("cloud %s: negative worker capacity", c.Name)
	}
	if c.Inject != nil {
		if err := c.Inject.Validate(); err != nil {
			return fmt.Errorf("cloud %s: %w", c.Name, err)
		}
	}
	if c.Autoscaler != nil {
		if err := c.Autoscaler.Validate(); err != nil {
			return fmt.Errorf("cloud %s: %w", c.Name, err)
		}
	}
	if c.Billing != nil {
		if err := c.Billing.Validate(); err != nil {
			return fmt.Errorf("cloud %s: %w", c.Name, err)
		}
	}
	return nil
}

// throttleFactor returns the CPU-throttling multiplier for an instance with
// the given memory size: 1 at or above FullSpeedMemoryMB, proportionally
// larger below it.
func (c *Config) throttleFactor(memoryMB int) float64 {
	if memoryMB == 0 {
		memoryMB = c.DefaultMemoryMB
	}
	if c.FullSpeedMemoryMB <= 0 || memoryMB <= 0 || memoryMB >= c.FullSpeedMemoryMB {
		return 1
	}
	return float64(c.FullSpeedMemoryMB) / float64(memoryMB)
}

// memoryGB returns an instance's billed memory in GB.
func (c *Config) memoryGB(memoryMB int) float64 {
	if memoryMB == 0 {
		memoryMB = c.DefaultMemoryMB
	}
	if memoryMB <= 0 {
		memoryMB = 1024
	}
	return float64(memoryMB) / 1024
}

// fillDefaults replaces nil distributions with zero constants so the
// simulator never nil-derefs on an unconfigured axis.
func (c *Config) fillDefaults() {
	zero := dist.Constant(0)
	if c.FrontendDelay == nil {
		c.FrontendDelay = zero
	}
	if c.ResponseDelay == nil {
		c.ResponseDelay = zero
	}
	if c.InternalDelay == nil {
		c.InternalDelay = zero
	}
	if c.RoutingDelay == nil {
		c.RoutingDelay = zero
	}
	if c.WarmOverhead == nil {
		c.WarmOverhead = zero
	}
	if c.SlowPathDelay == nil {
		c.SlowPathDelay = zero
	}
	if c.PlacementDelay == nil {
		c.PlacementDelay = zero
	}
	if c.QueueHandoffDelay == nil {
		c.QueueHandoffDelay = zero
	}
	if c.Faults.RetryBackoff == nil {
		c.Faults.RetryBackoff = zero
	}
	if c.Snapshots.RestoreDelay == nil {
		c.Snapshots.RestoreDelay = zero
	}
	if c.Snapshots.CaptureOverhead == nil {
		c.Snapshots.CaptureOverhead = zero
	}
	if c.SandboxBoot == nil {
		c.SandboxBoot = zero
	}
	if c.PooledInit == nil {
		c.PooledInit = zero
	}
	if c.ChunkReadLatency == nil {
		c.ChunkReadLatency = zero
	}
	if c.ResumeDelay == nil {
		c.ResumeDelay = zero
	}
	// Fill autoscaler cadence defaults on a copy so the caller's struct
	// stays untouched (pointer fields are shared with the caller).
	if c.Autoscaler != nil {
		as := *c.Autoscaler
		if as.TickInterval == 0 {
			as.TickInterval = 2 * time.Second
		}
		if as.ScaleDownWindow == 0 {
			as.ScaleDownWindow = time.Minute
		}
		c.Autoscaler = &as
	}
}

// initDelay returns the runtime-init distribution for a function.
func (c *Config) initDelay(r Runtime, m DeployMethod) dist.Dist {
	if m == DeployZIP && c.WarmGenericPool {
		return c.PooledInit
	}
	if d, ok := c.RuntimeInit[RuntimeMethodKey(r, m)]; ok {
		return d
	}
	return c.PooledInit
}
