package stats

import (
	"cmp"
	"math"
	"slices"
)

// MannWhitney holds the result of a two-sided Mann-Whitney U test.
type MannWhitney struct {
	// U is the test statistic for the first sample.
	U float64
	// Z is the normal-approximation score.
	Z float64
	// P is the two-sided p-value (normal approximation with tie
	// correction; adequate for the sample sizes benchmarking produces).
	P float64
}

// MannWhitneyU tests H0 "a and b are drawn from the same distribution"
// without distributional assumptions — the right tool for comparing two
// latency runs, whose distributions are skewed and heavy-tailed. It panics
// on empty samples.
func MannWhitneyU(a, b *Sample) MannWhitney {
	if a.Len() == 0 || b.Len() == 0 {
		panic("stats: Mann-Whitney on empty sample")
	}
	type obs struct {
		value float64
		group int
	}
	n1, n2 := a.Len(), b.Len()
	all := make([]obs, 0, n1+n2)
	for _, v := range a.Values() {
		all = append(all, obs{float64(v), 0})
	}
	for _, v := range b.Values() {
		all = append(all, obs{float64(v), 1})
	}
	slices.SortFunc(all, func(x, y obs) int { return cmp.Compare(x.value, y.value) })

	// Assign average ranks to ties; accumulate the tie correction term.
	ranks := make([]float64, len(all))
	tieCorrection := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].value == all[i].value {
			j++
		}
		avg := float64(i+j+1) / 2 // ranks are 1-based: positions i+1..j
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		t := float64(j - i)
		tieCorrection += t*t*t - t
		i = j
	}

	r1 := 0.0
	for i, o := range all {
		if o.group == 0 {
			r1 += ranks[i]
		}
	}
	fn1, fn2 := float64(n1), float64(n2)
	u1 := r1 - fn1*(fn1+1)/2
	mean := fn1 * fn2 / 2
	n := fn1 + fn2
	variance := fn1 * fn2 / 12 * ((n + 1) - tieCorrection/(n*(n-1)))
	if variance <= 0 {
		// All observations tied: no evidence of difference.
		return MannWhitney{U: u1, Z: 0, P: 1}
	}
	z := (u1 - mean) / math.Sqrt(variance)
	p := 2 * (1 - normalCDF(math.Abs(z)))
	if p > 1 {
		p = 1
	}
	return MannWhitney{U: u1, Z: z, P: p}
}

// normalCDF is the standard normal cumulative distribution function.
func normalCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}
