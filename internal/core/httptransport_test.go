package core

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHTTPTransportAgainstPlainEndpoint(t *testing.T) {
	// A non-JSON endpoint (e.g., a real provider's minimal function) still
	// yields latency samples; instrumentation fields stay zero.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "hello")
	}))
	defer srv.Close()
	ht := &HTTPTransport{}
	samples, err := ht.Execute([]PlannedRequest{
		{Endpoint: Endpoint{URL: srv.URL}},
		{Endpoint: Endpoint{URL: srv.URL}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range samples {
		if s.Err != nil {
			t.Fatalf("sample %d: %v", i, s.Err)
		}
		if s.Latency <= 0 {
			t.Fatalf("sample %d: no latency", i)
		}
		if s.Cold || s.TransferTime != 0 {
			t.Fatalf("sample %d: phantom instrumentation %+v", i, s)
		}
	}
}

func TestHTTPTransportServerError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	ht := &HTTPTransport{}
	samples, err := ht.Execute([]PlannedRequest{{Endpoint: Endpoint{URL: srv.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	if samples[0].Err == nil || !strings.Contains(samples[0].Err.Error(), "500") {
		t.Fatalf("err = %v, want 500", samples[0].Err)
	}
}

func TestHTTPTransportConnectionRefused(t *testing.T) {
	ht := &HTTPTransport{}
	samples, err := ht.Execute([]PlannedRequest{
		{Endpoint: Endpoint{URL: "http://127.0.0.1:1/refused"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if samples[0].Err == nil {
		t.Fatal("expected connection error in sample")
	}
}

func TestHTTPTransportBadURL(t *testing.T) {
	ht := &HTTPTransport{}
	samples, err := ht.Execute([]PlannedRequest{{Endpoint: Endpoint{URL: "://nope"}}})
	if err != nil {
		t.Fatal(err)
	}
	if samples[0].Err == nil {
		t.Fatal("expected URL error in sample")
	}
}

func TestHTTPTransportSchedulesOffsets(t *testing.T) {
	var mu sync.Mutex
	var arrivals []time.Time
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		arrivals = append(arrivals, time.Now())
		mu.Unlock()
	}))
	defer srv.Close()
	ht := &HTTPTransport{TimeScale: 10} // 200ms virtual -> 20ms wall
	start := time.Now()
	_, err := ht.Execute([]PlannedRequest{
		{At: 0, Endpoint: Endpoint{URL: srv.URL}},
		{At: 200 * time.Millisecond, Endpoint: Endpoint{URL: srv.URL}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 2 {
		t.Fatalf("%d arrivals", len(arrivals))
	}
	if gap := arrivals[1].Sub(start); gap < 15*time.Millisecond {
		t.Fatalf("second request fired after %v, want >= ~20ms wall", gap)
	}
}
