package experiments

import (
	"fmt"
	"time"
)

// fig9Refs hold the paper's burst-of-100 latencies for functions with a
// 1-second execution time under the long IAT (§VI-D3).
var fig9Refs = map[string]map[int]Ref{
	"aws": {
		1:   {Median: 1498 * time.Millisecond, P99: 1750 * time.Millisecond},
		100: {Median: 1598 * time.Millisecond, P99: 1865 * time.Millisecond},
	},
	"google": {
		1:   {Median: 1870 * time.Millisecond, P99: 2567 * time.Millisecond},
		100: {Median: 2978 * time.Millisecond, P99: 4595 * time.Millisecond},
	},
	"azure": {
		1:   {Median: 2401 * time.Millisecond, P99: 4643 * time.Millisecond},
		100: {Median: 18637 * time.Millisecond, P99: 38545 * time.Millisecond},
	},
}

// Fig9ExecTime is the busy-spin duration of the studied functions: 1 s,
// chosen to exceed every provider's median cold start (§VI-D3).
const Fig9ExecTime = time.Second

// Fig9BurstSizes are the burst sizes studied.
var Fig9BurstSizes = []int{1, 100}

// Fig9Scheduling reproduces Fig. 9: the implications of the scheduling
// policy for bursts of long-running (1 s) functions with a long IAT. A
// policy that lets invocations queue at active instances (Azure, partially
// Google) inflates completion time by up to two orders of magnitude versus
// spawning dedicated instances (AWS).
func Fig9Scheduling(opts Options) (*Figure, error) {
	opts = opts.normalized()
	fig := &Figure{
		ID:    "fig9",
		Title: "Burst latency with 1-second function execution time (long IAT)",
	}
	type fig9Case struct {
		prov  string
		burst int
	}
	var cases []fig9Case
	for _, prov := range AllProviders {
		for _, burst := range Fig9BurstSizes {
			cases = append(cases, fig9Case{prov, burst})
		}
	}
	series, err := mapSeries(opts, len(cases), func(i int, seed int64) (Series, error) {
		c := cases[i]
		samples := opts.Samples
		if c.burst == 1 {
			// Burst size 1 has no queueing potential; a smaller sample
			// suffices for its reference CDF.
			samples = min(samples, 300)
		} else if samples < c.burst*2 {
			samples = c.burst * 2
		}
		res, err := runBurst(c.prov, seed, opts.Engine, BurstLongIAT, c.burst, samples, Fig9ExecTime)
		if err != nil {
			return Series{}, fmt.Errorf("fig9 %s burst=%d: %w", c.prov, c.burst, err)
		}
		label := fmt.Sprintf("%s burst=%d", c.prov, c.burst)
		return seriesFrom(label, float64(c.burst), res, fig9Refs[c.prov][c.burst]), nil
	})
	if err != nil {
		return nil, err
	}
	fig.Series = series
	return fig, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
