package providers

import (
	"time"

	"github.com/stellar-repro/stellar/internal/blobstore"
	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/dist"
)

// Azure models Azure Functions as characterized in the paper:
//
//   - Highest warm-path latency of the three but the most predictable
//     (lowest warm TMR, §VI-A).
//   - Containers atop regular VMs: the slowest cold starts (median 1.4s)
//     with the highest variability (TMR 2.6).
//   - Strong image-size sensitivity (§VI-B2, lowest image-fetch bandwidth).
//   - A rate-limited scale controller: instances are added gradually, so
//     requests queue deeply at the few existing instances. This is what
//     produces the paper's two-orders-of-magnitude blow-up for bursts of
//     long-running functions (Fig. 9, Obs. 7) and the extreme burst
//     sensitivity under short IATs (median up 33.4x at burst 500).
//   - No Go runtime and no storage-transfer support in the paper's
//     experiments (the core framework still permits deploying them here).
func Azure() cloud.Config {
	return cloud.Config{
		Name:           "azure",
		PropagationRTT: 32 * time.Millisecond,

		FrontendDelay: dist.LogNormalMedTail(13*time.Millisecond, 42*time.Millisecond),
		ResponseDelay: dist.LogNormalMedTail(4*time.Millisecond, 10*time.Millisecond),
		InternalDelay: dist.LogNormalMedTail(4*time.Millisecond, 14*time.Millisecond),
		RoutingDelay:  dist.Constant(2 * time.Millisecond),
		WarmOverhead:  dist.LogNormalMedTail(6*time.Millisecond, 20*time.Millisecond),

		// Modest ingestion congestion; the dominant burst cost is queueing
		// at the scale-limited instances (below). Rare slow paths model the
		// observed short-IAT burst tail (TMR 7.9 at burst 100).
		CongestionThreshold:     3,
		CongestionUnit:          3 * time.Millisecond,
		CongestionExponent:      0.7,
		SlowPathProbPerInflight: 0.002,
		SlowPathMaxProb:         0.3,
		SlowPathDelay:           dist.LogNormalMedTail(1500*time.Millisecond, 4000*time.Millisecond),

		SchedulerCapacity: 8,
		PlacementDelay:    dist.LogNormalMedTail(50*time.Millisecond, 140*time.Millisecond),
		Policy: cloud.PolicyConfig{
			Kind:                cloud.PolicyRateLimited,
			MaxQueuePerInstance: 20,
			InitialTokens:       1,
			MaxTokens:           2,
			TokensPerSec:        1.0,
			EvalInterval:        time.Second,
		},
		QueueHandoffDelay: dist.LogNormalMedTail(14*time.Millisecond, 40*time.Millisecond),

		SandboxBoot:     dist.LogNormalMedTail(380*time.Millisecond, 1400*time.Millisecond),
		WarmGenericPool: false,
		PooledInit:      dist.LogNormalMedTail(280*time.Millisecond, 1000*time.Millisecond),
		RuntimeInit: map[string]dist.Dist{
			cloud.RuntimeMethodKey(cloud.RuntimePython, cloud.DeployZIP): dist.LogNormalMedTail(280*time.Millisecond, 1000*time.Millisecond),
			cloud.RuntimeMethodKey(cloud.RuntimeGo, cloud.DeployZIP):     dist.LogNormalMedTail(120*time.Millisecond, 300*time.Millisecond),
		},

		ImageStore: blobstore.Config{
			Name:               "azure-image-store",
			GetLatency:         dist.LogNormalMedTail(330*time.Millisecond, 1800*time.Millisecond),
			GetBandwidthBps:    370e6, // strongest size sensitivity (§VI-B2)
			BandwidthJitterPct: 0.2,
		},
		// The paper could not run storage transfers on Azure (no Go
		// runtime); a Blob-Storage-like profile is provided so the
		// framework remains usable beyond the paper's experiments.
		PayloadStore: blobstore.Config{
			Name: "azure-blob",
			GetLatency: dist.NewMixture(
				dist.Component{Weight: 0.97, D: dist.LogNormalMedTail(60*time.Millisecond, 260*time.Millisecond)},
				dist.Component{Weight: 0.03, D: dist.LogNormalMedTail(1200*time.Millisecond, 4000*time.Millisecond)},
			),
			PutLatency: dist.NewMixture(
				dist.Component{Weight: 0.97, D: dist.LogNormalMedTail(60*time.Millisecond, 260*time.Millisecond)},
				dist.Component{Weight: 0.03, D: dist.LogNormalMedTail(1200*time.Millisecond, 4000*time.Millisecond)},
			),
			GetBandwidthBps:    700e6,
			PutBandwidthBps:    700e6,
			BandwidthJitterPct: 0.2,
		},

		InlineLimitBytes:   4 << 20,
		InlineBandwidthBps: 120e6,
		InlineJitterPct:    0.25,

		KeepAlive:         cloud.KeepAlivePolicy{Dist: dist.Uniform{Min: 30 * time.Second, Max: 8 * time.Minute}},
		DefaultMemoryMB:   1536,
		FullSpeedMemoryMB: 1536,
		Workers:           32,
	}
}
