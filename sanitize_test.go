package stellar

import "testing"

func TestSanitize(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"", ""},
		{"aws", "aws"},
		{"aws short-IAT burst=100", "aws_short_IAT_burst_100"},
		{"go1.x/zip", "go1_x-zip"},
		{"Image size, 100MB", "Image_size__100MB"},
		{"inline (1MB)", "inline__1MB_"},
		{"p99 50%", "p99_50_"},
		{"a+b=c", "a_b_c"},
		{"tabs\tand\nnewlines", "tabs_and_newlines"},
		{"unicode µs", "unicode__s"},
		{"UPPER lower 0123", "UPPER_lower_0123"},
	}
	for _, c := range cases {
		if got := sanitize(c.in); got != c.want {
			t.Errorf("sanitize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// Whatever goes in, only alphanumerics, '_' and '-' may come out —
	// that is the metric-name-safety contract.
	for _, c := range cases {
		for _, r := range sanitize(c.in) {
			safe := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_' || r == '-'
			if !safe {
				t.Errorf("sanitize(%q) leaked unsafe rune %q", c.in, r)
			}
		}
	}
}
