package cli

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"github.com/stellar-repro/stellar/internal/azuretrace"
	"github.com/stellar-repro/stellar/internal/plot"
)

// cmdAzTrace generates and analyzes Azure-Functions-style execution-time
// traces (the Fig. 10 pipeline): -generate synthesizes a trace calibrated
// to the published statistics; -analyze runs the TMR analysis over any
// trace in the CSV schema, including projections of the real public trace.
func cmdAzTrace(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("aztrace", flag.ContinueOnError)
	fs.SetOutput(stdout)
	generate := fs.Int("generate", 0, "synthesize a trace with this many functions")
	out := fs.String("out", "", "output CSV path for -generate")
	analyze := fs.String("analyze", "", "trace CSV to analyze (function,p25_ms,...,p99_ms)")
	seed := fs.Int64("seed", 1, "synthesis seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *generate > 0:
		records := azuretrace.Generate(*generate, rand.New(rand.NewSource(*seed)))
		var w io.Writer = stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := azuretrace.WriteCSV(w, records); err != nil {
			return err
		}
		if *out != "" {
			fmt.Fprintf(stdout, "wrote %d functions to %s\n", len(records), *out)
		}
		return nil
	case *analyze != "":
		f, err := os.Open(*analyze)
		if err != nil {
			return err
		}
		defer f.Close()
		records, err := azuretrace.ReadCSV(f)
		if err != nil {
			return err
		}
		return writeTraceAnalysis(stdout, records)
	default:
		return fmt.Errorf("aztrace: need -generate N or -analyze FILE")
	}
}

// writeTraceAnalysis prints the Fig. 10 analysis for a trace.
func writeTraceAnalysis(w io.Writer, records []azuretrace.Record) error {
	fmt.Fprintf(w, "trace: %d functions\n\n", len(records))
	fmt.Fprintf(w, "%-10s %10s %14s\n", "class", "share", "P(TMR<10)")
	classes := []azuretrace.DurationClass{
		azuretrace.ClassAll, azuretrace.ClassSubSec,
		azuretrace.ClassMidRange, azuretrace.ClassLong,
	}
	var series []plot.Series
	for _, class := range classes {
		share := 1.0
		if class != azuretrace.ClassAll {
			share = azuretrace.ClassShare(records, class)
		}
		fmt.Fprintf(w, "%-10s %9.0f%% %14.2f\n", class, share*100,
			azuretrace.FracBelowTMR(records, class, 10))
		if sample := azuretrace.TMRSample(records, class); sample.Len() > 0 {
			series = append(series, plot.Series{Label: string(class), Sample: sample})
		}
	}
	fmt.Fprintln(w)
	return plot.CDF(w, "TMR CDFs (axis = TMR*1000, dimensionless)", series, 72, 14)
}
