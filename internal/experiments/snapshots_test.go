package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestSnapshotStudySpeedup(t *testing.T) {
	res, err := SnapshotStudy(Options{Seed: 3, Samples: 300, Replicas: 20})
	if err != nil {
		t.Fatal(err)
	}
	boot := res.Boot.Summarize()
	restore := res.Restore.Summarize()
	// Full vhive cold starts run in the high hundreds of ms; restores cut
	// the median by several times.
	if boot.Median < 400*time.Millisecond {
		t.Errorf("full-boot median %v suspiciously fast", boot.Median)
	}
	if speedup := float64(boot.Median) / float64(restore.Median); speedup < 3 {
		t.Errorf("snapshot speedup %.1fx, want >= 3x", speedup)
	}
	// Restored cold starts skip boot/fetch/init entirely.
	if res.RestoreBreakdown.Cold["cold/sandbox-boot"].Max() != 0 {
		t.Error("restored cold starts should not boot")
	}
	if res.RestoreBreakdown.Cold["cold/snapshot-restore"].Median() == 0 {
		t.Error("restore phase missing")
	}
	if res.BootBreakdown.Cold["cold/sandbox-boot"].Median() == 0 {
		t.Error("boot phase missing from full boots")
	}
	var sb strings.Builder
	WriteSnapshotReport(&sb, res)
	for _, want := range []string{"snapshots", "speedup", "snapshot restore", "cold/snapshot-restore"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestSnapshotCaptureOnlyOnce(t *testing.T) {
	res, err := SnapshotStudy(Options{Seed: 4, Samples: 100, Replicas: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Measured (post-warm-up) restores never pay the capture overhead.
	if res.RestoreBreakdown.Cold["cold/snapshot-capture"].Max() != 0 {
		t.Error("capture overhead leaked into measured restores")
	}
	_ = res
}
