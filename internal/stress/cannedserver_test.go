package stress

import (
	"bytes"
	"fmt"
	"net"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

// cannedServer is a hand-rolled HTTP/1.1 test server whose steady-state
// request loop performs zero heap allocations: fixed read buffer, canned
// response bytes, no net/http. That matters because Go benchmarks and
// testing.AllocsPerRun count allocations from every goroutine, so the
// client-side alloc gates need a server that contributes none.
type cannedServer struct {
	ln       net.Listener
	response []byte // full serialized response, reused verbatim
	served   atomic.Uint64
	closed   atomic.Bool

	// reqsPerConn closes the connection after that many responses
	// (0 = unlimited), exercising the client's stale-keep-alive retry.
	reqsPerConn int

	// stall, when set, makes request number stallAt (1-based, global)
	// sleep stallFor before responding — the coordinated-omission probe.
	stallAt  uint64
	stallFor time.Duration
}

// cannedBody is the flat InvokeReply shape the parser expects.
func cannedBody(cold bool, simNS int64) []byte {
	return []byte(fmt.Sprintf(
		`{"function":"f","cold":%t,"instance_id":1,"queue_wait_ns":0,"sim_latency_ns":%d}`+"\n",
		cold, simNS))
}

func newCannedServer(t *testing.T, body []byte) *cannedServer {
	t.Helper()
	s, err := startCanned(body)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.close)
	return s
}

func startCanned(body []byte) (*cannedServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &cannedServer{ln: ln}
	s.response = []byte("HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: " +
		strconv.Itoa(len(body)) + "\r\n\r\n" + string(body))
	go s.acceptLoop()
	return s, nil
}

func (s *cannedServer) url() string { return "http://" + s.ln.Addr().String() + "/fn/f" }

func (s *cannedServer) close() {
	if s.closed.CompareAndSwap(false, true) {
		_ = s.ln.Close()
	}
}

func (s *cannedServer) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.serveConn(conn)
	}
}

// serveConn handles one connection with a fixed buffer: scan for the blank
// line ending a request, emit the canned response, repeat.
func (s *cannedServer) serveConn(conn net.Conn) {
	defer conn.Close()
	buf := make([]byte, 8<<10)
	have := 0
	onThisConn := 0
	for {
		// Find one complete request head in the buffer.
		for bytes.Index(buf[:have], []byte("\r\n\r\n")) < 0 {
			if have == len(buf) {
				return // oversized request: not something these tests send
			}
			n, err := conn.Read(buf[have:])
			if err != nil {
				return
			}
			have += n
		}
		end := bytes.Index(buf[:have], []byte("\r\n\r\n")) + 4
		copy(buf, buf[end:have])
		have -= end

		n := s.served.Add(1)
		if s.stallAt != 0 && n == s.stallAt {
			time.Sleep(s.stallFor)
		}
		if _, err := conn.Write(s.response); err != nil {
			return
		}
		onThisConn++
		if s.reqsPerConn > 0 && onThisConn >= s.reqsPerConn {
			return
		}
	}
}
