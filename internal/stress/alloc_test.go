package stress

import (
	"testing"
	"time"
)

// TestRawClientSteadyStateAllocs gates the client hot path at <= 2 heap
// allocations per request (target 0). The canned server is alloc-free too,
// so the measurement — which counts mallocs from every goroutine — isolates
// the client.
func TestRawClientSteadyStateAllocs(t *testing.T) {
	srv := newCannedServer(t, cannedBody(false, 4242))
	target, err := NewTarget(srv.url(), "")
	if err != nil {
		t.Fatal(err)
	}
	c := newRawClient(target, 5*time.Second)
	defer c.Close()

	var r Reply
	for i := 0; i < 32; i++ { // settle the connection, buffers, and poller
		if err := c.Do(&r); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(400, func() {
		if err := c.Do(&r); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("raw client Do allocates %.1f/request, budget is 2", allocs)
	}
}

// TestScheduleNextAllocs pins the arrival generator itself at zero.
func TestScheduleNextAllocs(t *testing.T) {
	p, err := newPlan(Options{Arrival: ArrivalPoisson, Rate: 1e6, Duration: time.Hour, Workers: 2, Seed: 9}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	s := p.workerSchedule(0)
	allocs := testing.AllocsPerRun(10000, func() {
		if _, ok := s.next(); !ok {
			t.Fatal("schedule exhausted prematurely")
		}
	})
	if allocs != 0 {
		t.Fatalf("schedule.next allocates %.1f/arrival, want 0", allocs)
	}
}

// TestParseReplyAllocs pins the reply scanner at zero.
func TestParseReplyAllocs(t *testing.T) {
	body := cannedBody(true, 123456)
	var r Reply
	allocs := testing.AllocsPerRun(10000, func() {
		if !parseReply(body, &r) {
			t.Fatal("parse failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("parseReply allocates %.1f, want 0", allocs)
	}
}
