package cloud

import (
	"fmt"
	"time"

	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/trace"
)

// This file is the continuation seam that lets a caller-supplied policy —
// the workflow executor's DAG edges — run inside a serving instance exactly
// where a static FunctionSpec.Chain's downstream block runs. The seam
// exposes the chain block's primitive operations (producer send timestamp,
// per-edge transfer preparation, scatter-gather of downstream invocations)
// with the same operation order, RNG draws, and breakdown accounting, which
// is what makes a chain-shaped workflow byte-identical to the hand-rolled
// chain path (TestWorkflowChainMatchesHandRolledChain).

// Downstream is a continuation executed inside the serving instance after
// the handler body (Request.Cont). Its virtual time is part of the
// instance's busy window: billing, release, and the parent's Downstream
// breakdown all see it, as they see a static chain's downstream call.
type Downstream interface {
	// Run performs the downstream work through env. Returning an error fails
	// the invocation as a chain error would; continuations that manage their
	// own failure semantics (the workflow executor classifies branch
	// failures at join barriers) return nil.
	Run(p *des.Proc, env *DownstreamEnv) error
}

// DownstreamCall describes one downstream invocation to prepare: the target
// function and the edge's data-passing mode.
type DownstreamCall struct {
	// Fn is the downstream function.
	Fn string
	// Transfer selects the data-passing mode (TransferInline or
	// TransferStorage).
	Transfer TransferKind
	// PayloadBytes is the payload handed to the downstream function.
	PayloadBytes int64
	// ExecTime optionally overrides the downstream function's busy-spin.
	ExecTime time.Duration
	// Cont is the downstream invocation's own continuation (nil for leaves).
	Cont Downstream
	// Span optionally records the downstream invocation's pipeline spans.
	Span *trace.Req
}

// GatherFunc observes one gathered downstream completion in virtual-time
// completion order, at the instant the branch's response reached its
// invoker. It runs in simulation context and must not block.
type GatherFunc func(i int, resp *Response, err error, at des.Time)

// DownstreamEnv gives a Downstream continuation controlled access to the
// serving invocation: the producer-side response under construction, the
// attempt breakdown, and the cloud's transfer machinery. It is valid only
// for the duration of Downstream.Run.
type DownstreamEnv struct {
	c    *Cloud
	p    *des.Proc
	req  *Request
	fn   *Function
	bd   *Breakdown
	tr   *trace.Req
	resp *Response
}

// Now returns the current virtual time.
func (e *DownstreamEnv) Now() des.Time { return e.p.Now() }

// Fn returns the serving function's name.
func (e *DownstreamEnv) Fn() string { return e.fn.spec.Name }

// MarkSend records the producer timestamp ("<fn>.send") before the payload
// is saved or sent, as a static chain does (§IV).
func (e *DownstreamEnv) MarkSend() {
	e.resp.Timestamps[e.fn.spec.Name+".send"] = e.p.Now()
}

// Prepare builds one downstream request, performing the edge's send-side
// transfer work in place: inline payloads draw their wire time (and respect
// the provider's inline size limit), storage payloads are written to the
// payload store on the producer's clock. The operation order matches the
// static chain block exactly.
func (e *DownstreamEnv) Prepare(call DownstreamCall) (*Request, error) {
	next := &Request{
		Fn:                call.Fn,
		Internal:          true,
		ExecTime:          call.ExecTime,
		ChainPayloadBytes: call.PayloadBytes,
		Cont:              call.Cont,
		Span:              call.Span,
		depth:             e.req.depth + 1,
	}
	switch call.Transfer {
	case TransferInline:
		if e.c.cfg.InlineLimitBytes > 0 && call.PayloadBytes > e.c.cfg.InlineLimitBytes {
			return nil, fmt.Errorf("cloud %s: inline payload %dB exceeds provider limit %dB",
				e.c.cfg.Name, call.PayloadBytes, e.c.cfg.InlineLimitBytes)
		}
		next.wireDelay = e.c.inlineWireTime(call.PayloadBytes)
	case TransferStorage:
		next.storageKey = e.storePayload(call.PayloadBytes)
	default:
		return nil, fmt.Errorf("cloud %s: unsupported transfer %q", e.c.cfg.Name, call.Transfer)
	}
	return next, nil
}

// Store writes a payload to the payload store on the producer's clock
// without building a downstream request: the send-side cost of a storage
// edge whose consumer is fired by a different branch (the consumer's fetch
// rides its firing edge's key).
func (e *DownstreamEnv) Store(payloadBytes int64) {
	e.storePayload(payloadBytes)
}

// storePayload writes one payload under a fresh sequence key, captured
// before the Put sleeps: other procs advance the cloud-wide sequence during
// the upload, so re-reading it afterwards would misname the object.
func (e *DownstreamEnv) storePayload(payloadBytes int64) string {
	e.c.payloadSeq++
	key := fmt.Sprintf("payload/%s/%d", e.fn.spec.Name, e.c.payloadSeq)
	d := e.c.payloadStore.Put(e.p, key, payloadBytes)
	e.bd.PayloadStore += d
	e.tr.Mark(trace.StagePayloadStore, d, e.p.Now())
	return key
}

// Gather invokes the prepared downstream requests and blocks until all have
// completed, accounting the elapsed window as the producer's Downstream
// breakdown — a single request runs inline on the producer's proc (a
// sequential chain hop), several scatter into parallel procs joined before
// the producer returns, exactly as a static chain fan-out does. each, when
// non-nil, observes every branch at its completion instant. Downstream
// response timestamps merge into the producer's response; the first branch
// error (in completion order) is returned, but the producer may ignore it.
func (e *DownstreamEnv) Gather(reqs []*Request, each GatherFunc) error {
	if len(reqs) == 0 {
		return nil
	}
	start := e.p.Now()
	responses := make([]*Response, len(reqs))
	var firstErr error
	if len(reqs) == 1 {
		resp, err := e.c.Invoke(e.p, reqs[0])
		responses[0], firstErr = resp, err
		if each != nil {
			each(0, resp, err, e.p.Now())
		}
	} else {
		done := des.NewSignal(e.c.eng)
		remaining := len(reqs)
		for i, r := range reqs {
			i, r := i, r
			e.c.eng.Spawn("fanout/"+r.Fn, func(sp *des.Proc) {
				resp, err := e.c.Invoke(sp, r)
				responses[i] = resp
				if err != nil && firstErr == nil {
					firstErr = err
				}
				if each != nil {
					each(i, resp, err, sp.Now())
				}
				remaining--
				if remaining == 0 {
					done.Fire()
				}
			})
		}
		e.p.Wait(done)
	}
	window := e.p.Now() - start
	e.bd.Downstream += window
	e.tr.Mark(trace.StageDownstream, window, e.p.Now())
	for _, nresp := range responses {
		if nresp == nil {
			continue
		}
		for k, v := range nresp.Timestamps {
			e.resp.Timestamps[k] = v
		}
	}
	return firstErr
}

// Go launches one prepared downstream request asynchronously: the producer
// does not wait, the branch runs on its own proc, and done observes the
// outcome at the branch's completion instant. The spawned invocation is not
// part of the producer's busy window (fire-and-forget edges bill to the
// downstream instance only).
func (e *DownstreamEnv) Go(req *Request, done func(resp *Response, err error, at des.Time)) {
	c := e.c
	c.eng.Spawn("async/"+req.Fn, func(sp *des.Proc) {
		resp, err := c.Invoke(sp, req)
		if done != nil {
			done(resp, err, sp.Now())
		}
	})
}
