package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/providers"
	"github.com/stellar-repro/stellar/internal/runner"
	"github.com/stellar-repro/stellar/internal/stats"
)

// PolicyPoint is one point of the scheduling-policy design space: a queue
// depth and its measured latency/resource trade-off.
type PolicyPoint struct {
	// QueueDepth is the per-instance queue bound (1 = dedicated instance
	// per request, i.e., the no-queue policy).
	QueueDepth int
	// Latencies are the burst completion times.
	Latencies *stats.Sample
	// Instances is the number of distinct instances that served the burst
	// (the resource-utilization side of Obs. 7's trade-off).
	Instances int
	// BilledGBSeconds is the tenant-side bill for the burst.
	BilledGBSeconds float64
}

// PolicySpaceResult is the explored design space.
type PolicySpaceResult struct {
	// Points are ordered by queue depth.
	Points []PolicyPoint
	// BurstSize and ExecTime describe the studied workload.
	BurstSize int
	ExecTime  time.Duration
}

// PolicySpaceDepths is the swept per-instance queue bound.
var PolicySpaceDepths = []int{1, 2, 4, 8, 16, 32, 100}

// PolicySpace explores the scheduling-policy optimization space the paper
// flags as future research (Obs. 7): for a cold burst of long-running
// invocations, sweep how many requests may queue at one instance, from a
// dedicated instance per request (depth 1, AWS's policy — best latency,
// most instances) to deep queueing (Azure-like — worst latency, fewest
// instances). The substrate is the AWS profile with only the policy
// swapped, so everything else is held constant.
func PolicySpace(opts Options) (*PolicySpaceResult, error) {
	opts = opts.normalized()
	const burst = 100
	res := &PolicySpaceResult{BurstSize: burst, ExecTime: Fig9ExecTime}
	samples := burstSamples(opts, burst)
	points, err := runner.Map(opts.pool(), len(PolicySpaceDepths), func(sh runner.Shard) (PolicyPoint, error) {
		depth := PolicySpaceDepths[sh.Index]
		cfg := providers.MustGet("aws")
		cfg.Name = fmt.Sprintf("aws-queue-depth-%d", depth)
		cfg.Policy = cloud.PolicyConfig{Kind: cloud.PolicyBoundedQueue, MaxQueuePerInstance: depth}
		run, err := BurstWithConfig(cfg, sh.Seed, BurstLongIAT, burst, samples, Fig9ExecTime)
		if err != nil {
			return PolicyPoint{}, fmt.Errorf("policyspace depth %d: %w", depth, err)
		}
		instances := map[int]bool{}
		for _, s := range run.Samples {
			if s.Err == nil {
				instances[s.InstanceID] = true
			}
		}
		return PolicyPoint{
			QueueDepth:      depth,
			Latencies:       run.Latencies,
			Instances:       len(instances),
			BilledGBSeconds: run.BilledGBSeconds,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Points = points
	return res, nil
}

// WritePolicySpaceReport renders the trade-off frontier.
func WritePolicySpaceReport(w io.Writer, res *PolicySpaceResult) {
	fmt.Fprintf(w, "## policyspace — queueing-policy design space (Obs. 7's optimization space)\n\n")
	fmt.Fprintf(w, "cold burst of %d requests, %v execution time, AWS substrate\n\n", res.BurstSize, res.ExecTime)
	fmt.Fprintf(w, "%-12s %12s %12s %12s %14s %14s\n",
		"queue-depth", "median", "p99", "max", "instances", "billed GB-s")
	for _, pt := range res.Points {
		sum := pt.Latencies.Summarize()
		fmt.Fprintf(w, "%-12d %12v %12v %12v %14d %14.1f\n",
			pt.QueueDepth, sum.Median.Round(time.Millisecond), sum.P99.Round(time.Millisecond),
			sum.Max.Round(time.Millisecond), pt.Instances, pt.BilledGBSeconds)
	}
	fmt.Fprintln(w, "\ndepth 1 is the no-queue policy (AWS): every request completes in")
	fmt.Fprintln(w, "~cold+exec but the provider pays for a full fleet of instances; deep")
	fmt.Fprintln(w, "queueing amortizes instances at the cost of multiplying completion")
	fmt.Fprintln(w, "time — the pros and cons the paper leaves as an open design question.")
}
