package des

import (
	"testing"
	"time"
)

// TestPendingEventsBoundedUnderTimeoutChurn is the observable fix for the
// canceled-timer heap leak: under the seed engine's lazy cancellation, every
// WaitTimeout whose signal won left a dead one-hour timer in the heap until
// its distant deadline popped, so churning cancel/fire cycles grew
// PendingEvents without bound (and real-time engines carried the garbage
// forever). Indexed removal deletes the event at Cancel, so the schedule
// stays a handful of entries deep no matter how many cycles run.
func TestPendingEventsBoundedUnderTimeoutChurn(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	const rounds = 5000
	maxPending := 0
	e.Spawn("churn", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			sig := NewSignal(e)
			e.After(time.Millisecond, sig.Fire)
			if !p.WaitTimeout(sig, time.Hour) {
				t.Error("signal should win every round")
				return
			}
			if pe := e.PendingEvents(); pe > maxPending {
				maxPending = pe
			}
		}
	})
	e.Run(0)
	if maxPending > 8 {
		t.Fatalf("canceled timers leaked into the heap: max PendingEvents = %d over %d cancel/fire cycles",
			maxPending, rounds)
	}
	if e.PendingEvents() != 0 {
		t.Fatalf("%d events left after drain", e.PendingEvents())
	}
}

// TestTimerCancelReusedHandleIsInert pins the generation-counter contract:
// a Timer from a previous schedule must not cancel an unrelated timer that
// recycled its handle slot.
func TestTimerCancelReusedHandleIsInert(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	stale := e.At(time.Second, func() {})
	if !stale.Cancel() {
		t.Fatal("first cancel should succeed")
	}
	// The next timer reuses the freed handle slot.
	fired := false
	fresh := e.At(2*time.Second, func() { fired = true })
	if stale.Cancel() {
		t.Fatal("stale Timer canceled a recycled handle")
	}
	if !fresh.Pending() {
		t.Fatal("fresh timer should still be pending")
	}
	e.Run(0)
	if !fired {
		t.Fatal("fresh timer did not fire")
	}
	if fresh.Pending() {
		t.Fatal("fired timer still reports pending")
	}
}

// --- Allocation-regression gate ---------------------------------------------
//
// The scheduling core promises allocation-free steady state: once the heap
// array, handle table, goroutine pool, and wait-queue rings have grown to
// their high-water marks, firing events, switching processes, canceling
// timers, and spawning pooled processes must not allocate. These tests are
// the gate that keeps future changes from quietly reintroducing per-event
// garbage — the regression that motivated the PR 2 engine rewrite.

// TestAllocFreeEventScheduling: schedule-and-fire of plain callbacks.
func TestAllocFreeEventScheduling(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n%100 != 0 {
			e.After(time.Microsecond, tick)
		}
	}
	run := func() {
		n = 0
		e.After(time.Microsecond, tick)
		e.Run(0)
	}
	run() // warm: grow heap and handle table
	if avg := testing.AllocsPerRun(50, run); avg != 0 {
		t.Fatalf("steady-state event scheduling allocates %.1f allocs per 100 events, want 0", avg)
	}
}

// TestAllocFreeProcessSwitch: the Sleep/resume round trip.
func TestAllocFreeProcessSwitch(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	e.Spawn("sleeper", func(p *Proc) {
		for {
			p.Sleep(time.Microsecond)
			if p.eng.stopped {
				return
			}
		}
	})
	e.Run(time.Millisecond) // warm: start the goroutine, grow the heap
	if avg := testing.AllocsPerRun(50, func() { e.Run(e.Now() + time.Millisecond) }); avg != 0 {
		t.Fatalf("process switching allocates %.1f allocs per run, want 0", avg)
	}
}

// TestAllocFreeTimerCancel: schedule + indexed cancel churn.
func TestAllocFreeTimerCancel(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	fn := func() {}
	churn := func() {
		timers := [8]Timer{}
		for i := range timers {
			timers[i] = e.After(time.Duration(i+1)*time.Second, fn)
		}
		for i := range timers {
			if !timers[i].Cancel() {
				t.Fatal("cancel failed")
			}
		}
	}
	churn() // warm: grow handle table and free list
	if avg := testing.AllocsPerRun(100, churn); avg != 0 {
		t.Fatalf("timer cancel churn allocates %.1f allocs per run, want 0", avg)
	}
}

// TestAllocFreeSpawnReuse: pooled process records, wake channels, and
// goroutines make process-per-request spawning garbage-free after warm-up.
func TestAllocFreeSpawnReuse(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	body := func(p *Proc) { p.Sleep(time.Microsecond) }
	round := func() {
		for i := 0; i < 8; i++ {
			e.Spawn("pooled", body)
		}
		e.Run(0)
	}
	for i := 0; i < 4; i++ {
		round() // warm: populate the pool and grow the procs map
	}
	if avg := testing.AllocsPerRun(50, round); avg > 0.5 {
		t.Fatalf("pooled spawn allocates %.2f allocs per 8-proc round, want ~0", avg)
	}
}

// TestAllocFreeWaitQueues: Signal, Resource, and Queue ring buffers stop
// allocating once they reach their high-water capacity.
func TestAllocFreeWaitQueues(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	r := NewResource(e, 1)
	q := NewQueue[int](e)
	var workers []*Proc
	for i := 0; i < 4; i++ {
		workers = append(workers, e.Spawn("worker", func(p *Proc) {
			for {
				p.Acquire(r)
				q.Put(1)
				r.Release()
				p.Sleep(time.Microsecond)
				if p.eng.stopped {
					return
				}
			}
		}))
	}
	e.Spawn("drain", func(p *Proc) {
		for {
			q.Get(p)
			if p.eng.stopped {
				return
			}
		}
	})
	_ = workers
	e.Run(time.Millisecond) // warm: grow rings to their high-water marks
	if avg := testing.AllocsPerRun(20, func() { e.Run(e.Now() + time.Millisecond) }); avg != 0 {
		t.Fatalf("wait-queue churn allocates %.1f allocs per run, want 0", avg)
	}
}
