package faults

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Duration is a JSON-friendly time.Duration: it unmarshals from either a
// Go duration string ("250ms") or an integer nanosecond count, and always
// marshals back to the string form, so specs round-trip losslessly.
type Duration time.Duration

// UnmarshalJSON accepts "250ms" or 250000000.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		parsed, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("faults: bad duration %q: %w", s, err)
		}
		*d = Duration(parsed)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(data, &ns); err != nil {
		return fmt.Errorf("faults: duration must be a string or integer nanoseconds: %s", data)
	}
	*d = Duration(ns)
	return nil
}

// MarshalJSON writes the duration string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// InjectSpec is the JSON shape of an injector Config.
type InjectSpec struct {
	DropProb           float64  `json:"drop_prob,omitempty"`
	SpawnFailProb      float64  `json:"spawn_fail_prob,omitempty"`
	StorageTimeoutProb float64  `json:"storage_timeout_prob,omitempty"`
	StorageTimeout     Duration `json:"storage_timeout,omitempty"`
	ThrottleLimit      int      `json:"throttle_limit,omitempty"`
	ThrottleWindow     Duration `json:"throttle_window,omitempty"`
}

// ToConfig validates the spec and converts it.
func (s *InjectSpec) ToConfig() (Config, error) {
	cfg := Config{
		DropProb:           s.DropProb,
		SpawnFailProb:      s.SpawnFailProb,
		StorageTimeoutProb: s.StorageTimeoutProb,
		StorageTimeout:     time.Duration(s.StorageTimeout),
		ThrottleLimit:      s.ThrottleLimit,
		ThrottleWindow:     time.Duration(s.ThrottleWindow),
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// PolicySpec is the JSON shape of a resilience Policy.
type PolicySpec struct {
	Timeout     Duration `json:"timeout,omitempty"`
	MaxRetries  int      `json:"max_retries,omitempty"`
	BackoffBase Duration `json:"backoff_base,omitempty"`
	BackoffCap  Duration `json:"backoff_cap,omitempty"`
	Jitter      bool     `json:"jitter,omitempty"`
	HedgeAfter  Duration `json:"hedge_after,omitempty"`
}

// ToPolicy validates the spec and converts it.
func (s *PolicySpec) ToPolicy() (Policy, error) {
	pol := Policy{
		Timeout:     time.Duration(s.Timeout),
		MaxRetries:  s.MaxRetries,
		BackoffBase: time.Duration(s.BackoffBase),
		BackoffCap:  time.Duration(s.BackoffCap),
		Jitter:      s.Jitter,
		HedgeAfter:  time.Duration(s.HedgeAfter),
	}
	if err := pol.Validate(); err != nil {
		return Policy{}, err
	}
	return pol, nil
}

// FileSpec is a fault-experiment config file: what the cloud injects and
// how the client defends. Either section may be omitted.
type FileSpec struct {
	Inject *InjectSpec `json:"inject,omitempty"`
	Policy *PolicySpec `json:"policy,omitempty"`
}

// Loaded is a parsed and validated fault config file.
type Loaded struct {
	// Inject is non-nil when the file configured an injector.
	Inject *Config
	// Policy is non-nil when the file configured a client policy.
	Policy *Policy
}

// ParseConfig parses and validates a fault-config JSON document.
func ParseConfig(data []byte) (*Loaded, error) {
	var spec FileSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("faults: parse config: %w", err)
	}
	out := &Loaded{}
	if spec.Inject != nil {
		cfg, err := spec.Inject.ToConfig()
		if err != nil {
			return nil, err
		}
		out.Inject = &cfg
	}
	if spec.Policy != nil {
		pol, err := spec.Policy.ToPolicy()
		if err != nil {
			return nil, err
		}
		out.Policy = &pol
	}
	return out, nil
}

// LoadFile reads and parses a fault-config JSON file.
func LoadFile(path string) (*Loaded, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faults: read config: %w", err)
	}
	return ParseConfig(data)
}
