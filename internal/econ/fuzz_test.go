package econ

import (
	"math"
	"testing"
)

// FuzzLoadBillingConfig fuzzes the econ config loader: any input must either
// be rejected or produce a fully validated config — finite non-negative
// billing rates, a positive finite autoscaler target, and a consistent
// tick/window cadence. Loading must never panic.
func FuzzLoadBillingConfig(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"billing": {"plan": "ondemand"}}`,
		`{"billing": {"plan": "provisioned"}}`,
		`{"billing": {"name": "x", "busy_gbms_rate": 1e-8, "per_request_fee": 2e-7}}`,
		`{"billing": {"busy_gbms_rate": -1}}`,
		`{"billing": {"idle_gbms_rate": 1e400}}`,
		`{"autoscaler": {"target": 1}}`,
		`{"autoscaler": {"target": 2.5, "tick_interval": "1s", "scale_down_window": "30s", "suspend": true}}`,
		`{"autoscaler": {"target": 0}}`,
		`{"autoscaler": {"target": 1, "tick_interval": 2000000000, "panic_factor": 3}}`,
		`{"autoscaler": {"target": 1, "tick_interval": "5s", "scale_down_window": "1s"}}`,
		`{"billing": {"plan": "ondemand", "busy_gbms_rate": 1}}`,
		`{"autoscaler": {"target": 1e309}}`,
		`not json`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := ParseConfig(data)
		if err != nil {
			return
		}
		if b := loaded.Billing; b != nil {
			for _, r := range []float64{b.BusyGBmsRate, b.IdleGBmsRate, b.SuspendedGBmsRate, b.PerRequestFee} {
				if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
					t.Fatalf("accepted billing config with bad rate %v: %+v", r, b)
				}
			}
			if err := b.Validate(); err != nil {
				t.Fatalf("accepted billing config fails Validate: %v", err)
			}
			// A valid plan must price valid usage into finite costs.
			c := b.Price(Usage{BusyGBms: 1e6, IdleGBms: 1e6, SuspendedGBms: 1e6, Requests: 1e6})
			if math.IsNaN(c.Total) || math.IsInf(c.Total, 0) || c.Total < 0 {
				t.Fatalf("priced cost not finite non-negative: %+v", c)
			}
		}
		if a := loaded.Autoscaler; a != nil {
			if err := a.Validate(); err != nil {
				t.Fatalf("accepted autoscaler config fails Validate: %v", err)
			}
			// Construction and a few evaluations must not panic.
			as := NewAutoscaler(*a)
			as.Observe(0, 3, 1)
			as.Tick(int64(a.TickInterval), 0, 3)
		}
	})
}
