package cloud

import (
	"errors"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/dist"
	"github.com/stellar-repro/stellar/internal/faults"
)

// --- Injector wiring ---------------------------------------------------------

func TestInjectedDropSurfaces(t *testing.T) {
	cfg := testConfig()
	cfg.Inject = &faults.Config{DropProb: 1}
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "f"})

	rs := make([]*result, 5)
	for i := range rs {
		rs[i] = invokeAt(eng, c, time.Duration(i)*time.Second, &Request{Fn: "f"})
	}
	eng.Run(0)

	for i, r := range rs {
		if !errors.Is(r.err, faults.ErrDropped) {
			t.Fatalf("request %d: got err %v, want ErrDropped", i, r.err)
		}
		// A drop is silence: the error surfaces after half the RTT, with
		// no front-end, routing, service, or return-path time.
		if want := cfg.PropagationRTT / 2; r.lat != want {
			t.Errorf("request %d: dropped latency %v, want %v", i, r.lat, want)
		}
	}
	if m := c.Metrics(); m.Drops != 5 {
		t.Errorf("Drops = %d, want 5", m.Drops)
	}
	if c.LiveInstances("f") != 0 {
		t.Errorf("dropped requests spawned %d instances", c.LiveInstances("f"))
	}
}

func TestInjectedThrottleUnderBurst(t *testing.T) {
	cfg := testConfig() // 8 workers
	cfg.Inject = &faults.Config{ThrottleLimit: 1, ThrottleWindow: time.Second}
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "f"})

	const burst = 20
	rs := make([]*result, burst)
	for i := range rs {
		rs[i] = invokeAt(eng, c, 0, &Request{Fn: "f"})
	}
	eng.Run(0)

	throttled := 0
	for _, r := range rs {
		if errors.Is(r.err, faults.ErrThrottled) {
			throttled++
			// A 429 travels the full round trip plus the front end.
			if r.lat < cfg.PropagationRTT {
				t.Errorf("throttled latency %v below RTT %v", r.lat, cfg.PropagationRTT)
			}
		} else if r.err != nil {
			t.Fatalf("unexpected error: %v", r.err)
		}
	}
	// Fleet-wide limit = ThrottleLimit * Workers = 8 admits per window.
	if want := burst - 1*8; throttled != want {
		t.Errorf("throttled %d of %d, want %d", throttled, burst, want)
	}
	if m := c.Metrics(); int(m.Throttles) != throttled {
		t.Errorf("Throttles = %d, want %d", m.Throttles, throttled)
	}
}

func TestInjectedThrottleWindowResets(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.Inject = &faults.Config{ThrottleLimit: 1, ThrottleWindow: time.Second}
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "f"})

	// Two at t=0 (same window: one admitted), one in the next window.
	a := invokeAt(eng, c, 0, &Request{Fn: "f"})
	b := invokeAt(eng, c, 0, &Request{Fn: "f"})
	later := invokeAt(eng, c, 2*time.Second, &Request{Fn: "f"})
	eng.Run(0)

	if a.err != nil {
		t.Errorf("first request should be admitted: %v", a.err)
	}
	if !errors.Is(b.err, faults.ErrThrottled) {
		t.Errorf("second request in window should throttle, got %v", b.err)
	}
	if later.err != nil {
		t.Errorf("next-window request should be admitted: %v", later.err)
	}
}

func TestInjectedStorageTimeoutReleasesInstance(t *testing.T) {
	cfg := testConfig()
	cfg.Inject = &faults.Config{StorageTimeoutProb: 1, StorageTimeout: 500 * time.Millisecond}
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "cons"})
	deploy(t, c, FunctionSpec{Name: "prod",
		Chain: &ChainSpec{Next: "cons", Transfer: TransferStorage, PayloadBytes: 1 << 10}})

	r := invokeAt(eng, c, 0, &Request{Fn: "prod"})
	eng.Run(0)

	if !errors.Is(r.err, faults.ErrStorageTimeout) {
		t.Fatalf("got err %v, want ErrStorageTimeout", r.err)
	}
	if m := c.Metrics(); m.StorageFaults != 1 {
		t.Errorf("StorageFaults = %d, want 1", m.StorageFaults)
	}
	// The failing fetch must block for the configured deadline.
	if r.lat < 500*time.Millisecond {
		t.Errorf("latency %v below the 500ms storage timeout", r.lat)
	}
	// Both instances survive the failure, are released, and are reaped by
	// keep-alive before the engine drains: nothing may leak.
	if live := c.LiveInstances("prod") + c.LiveInstances("cons"); live != 0 {
		t.Errorf("%d instances leaked past keep-alive", live)
	}
	if n := eng.PendingEvents(); n != 0 {
		t.Errorf("%d events leaked", n)
	}
}

func TestInjectedSpawnFailuresRetryUntilSuccess(t *testing.T) {
	cfg := testConfig()
	cfg.Inject = &faults.Config{SpawnFailProb: 0.7}
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "f"})

	r := invokeAt(eng, c, 0, &Request{Fn: "f"})
	eng.Run(0)
	if r.err != nil {
		t.Fatalf("cold invoke failed: %v", r.err)
	}
	if m := c.Metrics(); m.SpawnFailures == 0 {
		t.Error("expected injected spawn failures at prob 0.7")
	}
}

// TestZeroFaultIdentity: a nil-or-disabled Inject config must leave every
// request's latency byte-identical to a cloud built without the field —
// the property that keeps all golden figure fingerprints stable.
func TestZeroFaultIdentity(t *testing.T) {
	run := func(inject *faults.Config) []time.Duration {
		cfg := testConfig()
		cfg.Faults = FaultConfig{CrashProb: 0.05, Retries: 2}
		cfg.Inject = inject
		eng := des.NewEngine()
		defer eng.Close()
		c, err := New(eng, cfg, dist.NewStreams(7))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Deploy(FunctionSpec{Name: "f", Runtime: RuntimePython, Method: DeployZIP}); err != nil {
			t.Fatal(err)
		}
		rs := make([]*result, 40)
		for i := range rs {
			rs[i] = invokeAt(eng, c, time.Duration(i)*250*time.Millisecond, &Request{Fn: "f"})
		}
		eng.Run(0)
		lats := make([]time.Duration, len(rs))
		for i, r := range rs {
			lats[i] = r.lat
		}
		return lats
	}

	base := run(nil)
	disabled := run(&faults.Config{}) // present but no active mode
	for i := range base {
		if base[i] != disabled[i] {
			t.Fatalf("request %d: nil=%v disabled=%v — disabled injector perturbed the run",
				i, base[i], disabled[i])
		}
	}
}

// --- Latent-leak regression --------------------------------------------------

// raceConfig provokes the queue-timeout/grant race deterministically: zero
// delays everywhere, a rate-limited policy with exactly one scale-out
// token, and QueueTimeout equal to the first request's execution time, so
// the second request's timeout timer and the instance release land at the
// same virtual instant — with the timer scheduled first.
func raceConfig() Config {
	return Config{
		Name:              "race",
		SchedulerCapacity: 1,
		Workers:           1,
		Policy: PolicyConfig{
			Kind:                PolicyRateLimited,
			MaxQueuePerInstance: 10,
			InitialTokens:       1,
			MaxTokens:           1,
			TokensPerSec:        1e-12,
		},
		QueueTimeout: 100 * time.Millisecond,
		KeepAlive:    KeepAlivePolicy{Fixed: 10 * time.Minute},
	}
}

// TestQueueTimeoutGrantRaceReleasesInstance: when a buffered request times
// out at the same instant a released instance is granted to it, the
// request still fails — but the instance it was handed must go back to the
// pool instead of staying busy forever (leaking its worker slot and
// keep-alive accounting).
func TestQueueTimeoutGrantRaceReleasesInstance(t *testing.T) {
	eng, c := newTestCloud(t, raceConfig())
	deploy(t, c, FunctionSpec{Name: "f"})

	// A occupies the only instance for exactly QueueTimeout; B buffers
	// behind it with no token left to scale out.
	a := invokeAt(eng, c, 0, &Request{Fn: "f", ExecTime: 100 * time.Millisecond})
	b := invokeAt(eng, c, 0, &Request{Fn: "f"})
	eng.Run(0)

	if a.err != nil {
		t.Fatalf("first request failed: %v", a.err)
	}
	if !errors.Is(b.err, ErrQueueTimeout) {
		t.Fatalf("second request: got err %v, want ErrQueueTimeout", b.err)
	}
	if m := c.Metrics(); m.QueueTimeouts != 1 {
		t.Errorf("QueueTimeouts = %d, want 1", m.QueueTimeouts)
	}
	// The drained engine must have reaped everything: a stranded-busy
	// instance would still be live with its worker slot held.
	if live := c.LiveInstances("f"); live != 0 {
		t.Fatalf("%d instances still live after drain — grant-race leak", live)
	}
	if got := c.Workers()[0].Instances; got != 0 {
		t.Fatalf("worker still holds %d instance slots after drain", got)
	}
	if n := eng.PendingEvents(); n != 0 {
		t.Fatalf("%d events still pending after drain", n)
	}
}

// TestNoLeaksAfterFaultedChurn hammers the cloud with 10k resilient
// invocations under every injected failure mode plus queue timeouts, then
// asserts the drained engine holds no stranded instances, worker slots, or
// events — the heap-leak gate for the fault layer's error paths.
func TestNoLeaksAfterFaultedChurn(t *testing.T) {
	cfg := raceConfig()
	cfg.Policy.TokensPerSec = 5 // slow scale-out: deep buffers, many timeouts
	cfg.Policy.EvalInterval = 20 * time.Millisecond
	cfg.QueueTimeout = 50 * time.Millisecond
	cfg.KeepAlive = KeepAlivePolicy{Fixed: time.Second}
	cfg.Workers = 4
	cfg.Faults = FaultConfig{CrashProb: 0.05, Retries: 1}
	cfg.Inject = &faults.Config{
		DropProb:       0.2,
		SpawnFailProb:  0.3,
		ThrottleLimit:  40,
		ThrottleWindow: 100 * time.Millisecond,
	}
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "f"})

	const n = 10000
	pol := faults.Policy{
		Timeout:     80 * time.Millisecond,
		MaxRetries:  2,
		BackoffBase: 5 * time.Millisecond,
		BackoffCap:  20 * time.Millisecond,
		Jitter:      true,
		HedgeAfter:  40 * time.Millisecond,
	}
	rng := dist.NewStreams(99).Stream("client")
	req := &Request{Fn: "f", ExecTime: 10 * time.Millisecond}
	var done, failed int
	eng.Spawn("churn", func(p *des.Proc) {
		for i := 0; i < n; i++ {
			eng.Spawn("req", func(rp *des.Proc) {
				r := pol.Do(rp, rng, func(ap *des.Proc) error {
					_, err := c.Invoke(ap, req)
					return err
				})
				done++
				if r.Err != nil {
					failed++
				}
			})
			p.Sleep(2 * time.Millisecond)
		}
	})
	eng.Run(0)

	if done != n {
		t.Fatalf("only %d of %d invocations completed", done, n)
	}
	if failed == 0 || failed == n {
		t.Fatalf("degenerate outcome: %d of %d failed — fault mix not exercised", failed, n)
	}
	if live := c.LiveInstances("f"); live != 0 {
		t.Errorf("%d instances leaked", live)
	}
	for _, w := range c.Workers() {
		if w.Instances != 0 {
			t.Errorf("worker %d still holds %d instance slots", w.ID, w.Instances)
		}
	}
	if m := c.Metrics(); m.QueueTimeouts == 0 || m.Drops == 0 || m.Throttles == 0 || m.SpawnFailures == 0 {
		t.Errorf("fault mix incomplete: %+v", m)
	}
	if pending := eng.PendingEvents(); pending != 0 {
		t.Errorf("%d events leaked after drain", pending)
	}
}
