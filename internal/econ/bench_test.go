package econ

import (
	"testing"
	"time"
)

// BenchmarkAutoscalerTick exercises the full evaluation path — record,
// window max, panic check — at a realistic ring size. Gated in CI by
// benchgate: the ring is fixed at construction, so steady-state ticks must
// stay at 0 allocs/op.
func BenchmarkAutoscalerTick(b *testing.B) {
	a := NewAutoscaler(AutoscalerConfig{
		Target:          2,
		TickInterval:    2 * time.Second,
		ScaleDownWindow: time.Minute,
	})
	tick := int64(2 * time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := int64(i) * tick
		a.Observe(now, i%17, 4)
		a.Tick(now+tick/2, i%5, 4)
	}
}

// BenchmarkBillingMeter is the warm-path metering cost: one busy-time fold
// plus a request count, as every admitted invocation pays. Gated in CI at an
// absolute budget of 0 allocs/op.
func BenchmarkBillingMeter(b *testing.B) {
	var m Meter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Busy(1.25)
		m.Request()
	}
	if m.Usage().Requests == 0 {
		b.Fatal("meter lost requests")
	}
}
